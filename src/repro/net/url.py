"""URL modelling and extraction from SMS text.

SMS messages have no markup: URLs appear as bare strings, often without a
scheme, sometimes defanged by reporters (``hxxp://``, ``bit[.]ly``), and —
critically for the paper's OCR discussion (§3.2) — may be wrapped across
lines in a screenshot. This module provides:

* :class:`Url` — parsed value object (scheme, host, path, query).
* :func:`extract_urls` — find URL-shaped substrings in free text.
* :func:`refang` — undo common defanging before parsing.
* :func:`defang` — produce the publication-safe form used in the paper's
  prose (``sa-krs[.]web[.]app``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ValidationError
from .tld import TldRegistry, default_registry

_SCHEME_RE = re.compile(r"^(?P<scheme>[a-zA-Z][a-zA-Z0-9+.-]*)://")
_HOST_LABEL = r"[a-zA-Z0-9](?:[a-zA-Z0-9-]{0,61}[a-zA-Z0-9])?"
_URL_CANDIDATE_RE = re.compile(
    r"(?:(?:https?|hxxps?)://)?"
    rf"(?:{_HOST_LABEL}\.)+[a-zA-Z]{{2,24}}"
    r"(?::\d{2,5})?"
    r"(?:/[^\s\"'<>()]*)?",
)


@dataclass(frozen=True)
class Url:
    """A parsed URL. ``host`` is always lowercase; ``scheme`` defaults to
    ``http`` when the SMS omitted it (as real smishing texts often do)."""

    scheme: str
    host: str
    path: str = ""
    query: str = ""
    port: Optional[int] = None

    def __str__(self) -> str:
        port = f":{self.port}" if self.port else ""
        query = f"?{self.query}" if self.query else ""
        return f"{self.scheme}://{self.host}{port}{self.path}{query}"

    @property
    def is_https(self) -> bool:
        return self.scheme == "https"

    @property
    def apex(self) -> str:
        """Registered (pay-level) domain under the default TLD registry.

        Never raises: a hand-constructed ``Url`` with a host the registry
        cannot split (hostile input that bypassed :func:`parse_url`) falls
        back to the full host, so per-record analysis degrades instead of
        killing the run.
        """
        try:
            return default_registry().split_host(self.host)[0]
        except ValidationError:
            return self.host

    @property
    def effective_tld(self) -> str:
        try:
            return default_registry().split_host(self.host)[1]
        except ValidationError:
            return ""

    @property
    def is_apk_download(self) -> bool:
        """True when the path points directly at an Android package (§6)."""
        return self.path.lower().endswith(".apk")

    def with_path(self, path: str, query: str = "") -> "Url":
        return Url(scheme=self.scheme, host=self.host, path=path,
                   query=query, port=self.port)

    def without_query(self) -> "Url":
        return Url(scheme=self.scheme, host=self.host, path=self.path,
                   query="", port=self.port)


def parse_url(raw: str, *, registry: Optional[TldRegistry] = None) -> Url:
    """Parse a URL string (scheme optional) into a :class:`Url`.

    Raises :class:`~repro.errors.ValidationError` for strings that are not
    plausibly URLs (no dot, bad port, unknown TLD when a registry check is
    requested).
    """
    registry = registry or default_registry()
    text = refang(raw.strip())
    match = _SCHEME_RE.match(text)
    if match:
        scheme = match.group("scheme").lower()
        rest = text[match.end():]
    else:
        scheme = "http"
        rest = text
    if not rest:
        raise ValidationError(f"empty URL after scheme: {raw!r}")
    host_part, slash, tail = rest.partition("/")
    path = f"/{tail}" if slash else ""
    query = ""
    if "?" in path:
        path, _, query = path.partition("?")
    elif "?" in host_part:
        host_part, _, query = host_part.partition("?")
    port: Optional[int] = None
    if ":" in host_part:
        host_part, _, port_text = host_part.partition(":")
        if not port_text.isdigit():
            raise ValidationError(f"bad port in URL: {raw!r}")
        port = int(port_text)
        if not 0 < port < 65536:
            raise ValidationError(f"port out of range: {raw!r}")
    host = host_part.lower().rstrip(".")
    if "." not in host:
        raise ValidationError(f"URL host has no dot: {raw!r}")
    if not re.fullmatch(rf"(?:{_HOST_LABEL}\.)+[a-zA-Z]{{2,24}}", host):
        raise ValidationError(f"malformed URL host: {raw!r}")
    registry.split_host(host)  # raises on unknown TLD
    return Url(scheme=scheme, host=host, path=path, query=query, port=port)


def try_parse_url(raw: str) -> Optional[Url]:
    """Parse, returning None instead of raising on invalid input."""
    try:
        return parse_url(raw)
    except ValidationError:
        return None


def refang(text: str) -> str:
    """Undo reporter defanging: ``hxxp`` → ``http``, ``[.]``/``(.)`` → ``.``."""
    result = text.replace("[.]", ".").replace("(.)", ".").replace("[dot]", ".")
    result = re.sub(r"\bhxxp(s?)://", r"http\1://", result, flags=re.IGNORECASE)
    return result


def defang(url: "Url | str") -> str:
    """Publication-safe rendering: dots in the host become ``[.]``."""
    text = str(url)
    match = _SCHEME_RE.match(text)
    prefix = ""
    if match:
        prefix = match.group(0).replace("http", "hxxp")
        text = text[match.end():]
    host, slash, tail = text.partition("/")
    host = host.replace(".", "[.]")
    return prefix + host + (slash + tail if slash else "")


# Tokens that look like URLs but are almost always false positives in
# user reports (mentions of the reporting platform itself, etc.).
_EXTRACTION_DENYLIST = frozenset({"twitter.com", "x.com", "reddit.com"})


def extract_urls(
    text: str,
    *,
    registry: Optional[TldRegistry] = None,
    include_denylisted: bool = False,
) -> List[Url]:
    """Extract all URL-shaped substrings from free text, in order.

    Handles scheme-less hosts (``ceskaposta.online/track``), defanged forms
    and trailing punctuation. Unknown TLDs are skipped — a bare "end of
    sentence.Next" pattern should not produce a URL.
    """
    registry = registry or default_registry()
    found: List[Url] = []
    seen: set = set()
    for match in _URL_CANDIDATE_RE.finditer(refang(text)):
        candidate = match.group(0).rstrip(".,;:!?)\"'")
        try:
            url = parse_url(candidate, registry=registry)
        except ValidationError:
            continue
        if not include_denylisted and url.apex in _EXTRACTION_DENYLIST:
            continue
        key = str(url)
        if key in seen:
            continue
        seen.add(key)
        found.append(url)
    return found


@dataclass
class RedirectChain:
    """An observed redirect chain from an active crawl (§6)."""

    hops: List[Url] = field(default_factory=list)

    def append(self, url: Url) -> None:
        self.hops.append(url)

    @property
    def start(self) -> Optional[Url]:
        return self.hops[0] if self.hops else None

    @property
    def final(self) -> Optional[Url]:
        return self.hops[-1] if self.hops else None

    def __len__(self) -> int:
        return len(self.hops)

    def __iter__(self):
        return iter(self.hops)


def join_wrapped_url(lines: List[str]) -> str:
    """Re-join a URL that a screenshot wrapped across lines (§3.2).

    Messaging apps hard-wrap long URLs; naive OCR that loses reading order
    truncates them. Given consecutive physical lines belonging to one SMS,
    this joins fragments where a line ends mid-URL (no trailing space and
    the next line continues with URL-safe characters).
    """
    joined: List[str] = []
    buffer = ""
    for line in lines:
        if buffer:
            stripped = line.lstrip()
            if stripped and re.match(r"^[A-Za-z0-9/._?=&%-]+", stripped):
                buffer += stripped
                continue
            joined.append(buffer)
            buffer = ""
        if re.search(r"(?:https?://|\w\.\w{2,24}/)[^\s]*$", line.rstrip()):
            buffer = line.rstrip()
        else:
            joined.append(line)
    if buffer:
        joined.append(buffer)
    return "\n".join(joined)
