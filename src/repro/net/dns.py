"""Authoritative DNS zones and a resolving client for the active crawl.

Passive DNS (:mod:`repro.services.passivedns`) answers *historical*
questions; the §6 case study needs *live* resolution: when the crawler
follows a URL, the hostname must resolve right now, or the fetch dies
with NXDOMAIN — one of the takedown states active measurement observes.

The zone database is populated from the world's domain assets. Records
expire when a registrar suspends the domain (modelled off the host
lifetime), and Cloudflare-proxied hosts resolve to the proxy addresses,
never the origin — which is exactly why §4.6 can only attribute 18.8% of
domains to Cloudflare rather than their true hosting.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import NotFound
from ..utils.rng import stable_hash
from .ipaddr import IPv4


@dataclass(frozen=True)
class DnsRecord:
    """One A record with its validity window."""

    name: str
    address: IPv4
    valid_from: dt.date
    valid_until: dt.date
    ttl: int = 300

    def alive_on(self, day: dt.date) -> bool:
        return self.valid_from <= day <= self.valid_until


class DnsZoneDatabase:
    """A-record zones for scammer-controlled names."""

    #: Maximum days a smishing domain keeps resolving before suspension.
    MAX_RESOLUTION_DAYS = 60

    def __init__(self) -> None:
        self._records: Dict[str, List[DnsRecord]] = {}

    @classmethod
    def from_assets(cls, assets: Iterable) -> "DnsZoneDatabase":
        """Build zones from the world's domain assets."""
        database = cls()
        for asset in assets:
            lifetime = stable_hash("dns-life:" + asset.fqdn) % (
                cls.MAX_RESOLUTION_DAYS
            )
            until = asset.created_at + dt.timedelta(days=max(lifetime, 1))
            for address in asset.hosting.addresses:
                database.add_record(DnsRecord(
                    name=asset.fqdn,
                    address=address,
                    valid_from=asset.created_at,
                    valid_until=until,
                ))
        return database

    def add_record(self, record: DnsRecord) -> None:
        self._records.setdefault(record.name.lower(), []).append(record)

    def records_for(self, name: str) -> List[DnsRecord]:
        return list(self._records.get(name.lower().strip("."), []))

    def __contains__(self, name: str) -> bool:
        return name.lower().strip(".") in self._records

    def __len__(self) -> int:
        return len(self._records)


@dataclass(frozen=True)
class ResolutionResult:
    """Outcome of one live query."""

    name: str
    addresses: Tuple[IPv4, ...]
    from_cache: bool = False

    @property
    def resolved(self) -> bool:
        return bool(self.addresses)


class DnsResolver:
    """Caching stub resolver over the zone database.

    The cache honours record TTLs in *queries*, not wall-clock time: each
    ``resolve`` advances a query counter and entries expire after
    ``ttl_queries`` lookups — a deterministic stand-in for time-based
    expiry that still exercises the cache-consistency paths.
    """

    def __init__(self, zones: DnsZoneDatabase, *, ttl_queries: int = 50):
        self._zones = zones
        self.zones = zones  # public: stateless probes read records directly
        self._ttl = ttl_queries
        self._cache: Dict[Tuple[str, dt.date], Tuple[int, ResolutionResult]] = {}
        self._clock = 0
        self.queries = 0
        self.cache_hits = 0

    def resolve(self, name: str, on: dt.date) -> ResolutionResult:
        """Resolve ``name`` as of ``on``; raises NXDOMAIN as NotFound."""
        self._clock += 1
        self.queries += 1
        key = (name.lower().strip("."), on)
        cached = self._cache.get(key)
        if cached is not None and self._clock - cached[0] <= self._ttl:
            self.cache_hits += 1
            result = cached[1]
            if not result.resolved:
                raise NotFound(f"NXDOMAIN (cached): {name}", service="dns")
            return ResolutionResult(
                name=result.name, addresses=result.addresses, from_cache=True
            )
        alive = tuple(
            record.address for record in self._zones.records_for(name)
            if record.alive_on(on)
        )
        result = ResolutionResult(name=key[0], addresses=alive)
        self._cache[key] = (self._clock, result)
        if not alive:
            raise NotFound(f"NXDOMAIN: {name}", service="dns")
        return result

    def try_resolve(self, name: str, on: dt.date) -> Optional[ResolutionResult]:
        try:
            return self.resolve(name, on)
        except NotFound:
            return None

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0
