"""Counters and histograms for pipeline runs.

A :class:`MetricsRegistry` hands out labelled :class:`Counter` and
:class:`Histogram` instruments keyed by ``(name, labels)``, so the same
metric name can be split per forum or per service (``service.requests
{service=whois}``). Instruments are plain Python objects — no export
protocol, no background thread — and serialise to dicts for the JSON
trace dump.

:class:`NullMetrics` is the disabled twin: it returns shared no-op
instruments so instrumentation sites cost one method call and allocate
nothing when observability is off.

Zero-dependency constraint: standard library only.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing labelled count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels),
                "value": self.value}


class Histogram:
    """Streaming summary of observed values (count/total/min/max/mean)."""

    __slots__ = ("name", "labels", "count", "total", "min", "max")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return None if self.count == 0 else self.total / self.count

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "labels": dict(self.labels),
                "count": self.count, "total": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}


class MetricsRegistry:
    """Get-or-create registry of labelled instruments."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[LabelKey, Counter] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter(name, {k: str(v) for k, v in labels.items()})
            self._counters[key] = instrument
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = Histogram(name, {k: str(v) for k, v in labels.items()})
            self._histograms[key] = instrument
        return instrument

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0.0 when never incremented)."""
        instrument = self._counters.get(_key(name, labels))
        return 0.0 if instrument is None else instrument.value

    def counters(self) -> List[Counter]:
        return list(self._counters.values())

    def histograms(self) -> List[Histogram]:
        return list(self._histograms.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": [c.to_dict() for c in self._counters.values()],
            "histograms": [h.to_dict() for h in self._histograms.values()],
        }


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics:
    """Metrics disabled: shared no-op instruments, empty export."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, name: str, **labels: Any) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def value(self, name: str, **labels: Any) -> float:
        return 0.0

    def counters(self) -> List[Counter]:
        return []

    def histograms(self) -> List[Histogram]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {"counters": [], "histograms": []}
