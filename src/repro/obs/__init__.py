"""Observability for the reproduction pipeline (tracing + metrics).

The package is deliberately zero-dependency (standard library only, plus
the in-repo table renderer) and splits into three layers:

* :mod:`repro.obs.trace` — nested spans with wall-clock and simulated
  timestamps, and a no-op tracer for disabled runs.
* :mod:`repro.obs.metrics` — labelled counters/histograms.
* :mod:`repro.obs.profile` — the performance observatory's analysis
  layer: self/cumulative hot-path attribution, deterministic latency
  percentile digests, Chrome trace export, and the ``--profile``
  function-level profiler.
* :mod:`repro.obs.history` — the durable run-history store
  (``RUNS.jsonl``), trend tables, and the perf regression gate.
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the
  pipeline threads through its stages, meter event hooks, JSON export,
  and the ``repro stats`` summary tables.
"""

from .metrics import Counter, Histogram, MetricsRegistry, NullMetrics
from .trace import NULL_SPAN, NullTracer, Span, Tracer
from .profile import (
    FunctionProfiler,
    PercentileDigest,
    Profile,
    StageProfile,
    build_profile,
    chrome_trace,
)
from .history import (
    GateThresholds,
    HISTORY_FORMAT_VERSION,
    RUNS_NAME,
    RunHistory,
    build_run_record,
    compare_runs,
    history_table,
    previous_comparable,
    render_history,
    stage_trend_table,
)
from .telemetry import (
    NULL_TELEMETRY,
    TRACE_FORMAT_VERSION,
    Telemetry,
    ensure_telemetry,
    stderr_sink,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_SPAN",
    "NullTracer",
    "Span",
    "Tracer",
    "FunctionProfiler",
    "PercentileDigest",
    "Profile",
    "StageProfile",
    "build_profile",
    "chrome_trace",
    "GateThresholds",
    "HISTORY_FORMAT_VERSION",
    "RUNS_NAME",
    "RunHistory",
    "build_run_record",
    "compare_runs",
    "history_table",
    "previous_comparable",
    "render_history",
    "stage_trend_table",
    "NULL_TELEMETRY",
    "TRACE_FORMAT_VERSION",
    "Telemetry",
    "ensure_telemetry",
    "stderr_sink",
]
