"""Observability for the reproduction pipeline (tracing + metrics).

The package is deliberately zero-dependency (standard library only, plus
the in-repo table renderer) and splits into three layers:

* :mod:`repro.obs.trace` — nested spans with wall-clock and simulated
  timestamps, and a no-op tracer for disabled runs.
* :mod:`repro.obs.metrics` — labelled counters/histograms.
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the
  pipeline threads through its stages, meter event hooks, JSON export,
  and the ``repro stats`` summary tables.
"""

from .metrics import Counter, Histogram, MetricsRegistry, NullMetrics
from .trace import NULL_SPAN, NullTracer, Span, Tracer
from .telemetry import (
    NULL_TELEMETRY,
    TRACE_FORMAT_VERSION,
    Telemetry,
    ensure_telemetry,
    stderr_sink,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_SPAN",
    "NullTracer",
    "Span",
    "Tracer",
    "NULL_TELEMETRY",
    "TRACE_FORMAT_VERSION",
    "Telemetry",
    "ensure_telemetry",
    "stderr_sink",
]
