"""Telemetry: one tracer + one metrics registry + meter accounting.

:class:`Telemetry` is the single object the pipeline threads through its
stages. It owns a :class:`~repro.obs.trace.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry`, subscribes to
``ServiceMeter``/``ForumMeter`` events (every charge, throttle, and
backoff lands in per-service counters), collects end-of-run meter
snapshots, and exports the whole run as a JSON document or as
human-readable summary tables.

``NULL_TELEMETRY`` is the module-wide disabled instance: a
:class:`~repro.obs.trace.NullTracer` plus :class:`NullMetrics`, so an
uninstrumented ``run_pipeline`` allocates no span or counter objects.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Callable, Dict, List, Optional

from ..utils.tables import Table
from .metrics import MetricsRegistry, NullMetrics
from .profile import Profile, build_profile, chrome_trace, function_table
from .trace import NullTracer, Tracer

#: Trace JSON schema version, bumped on incompatible layout changes.
TRACE_FORMAT_VERSION = 1


def stderr_sink(line: str) -> None:
    """Progress sink writing one line per span event to stderr."""
    print(line, file=sys.stderr, flush=True)


class Telemetry:
    """Everything observed about one pipeline run."""

    def __init__(self, *, tracer=None, metrics=None, enabled: bool = True):
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else (
            Tracer() if enabled else NullTracer()
        )
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry() if enabled else NullMetrics()
        )
        #: Final ``meter.snapshot()`` per service, captured at run end.
        self.meter_snapshots: Dict[str, Dict[str, Any]] = {}
        #: Final ``breaker.snapshot()`` per service, captured at run end.
        self.breaker_snapshots: Dict[str, Dict[str, Any]] = {}
        #: Final ``cache.stats()`` of the enrichment cache, when one ran.
        self.cache_snapshot: Dict[str, Any] = {}
        #: Final ``session.stats()`` of the checkpoint session, when the
        #: run was checkpointed (record or resume mode).
        self.checkpoint_snapshot: Dict[str, Any] = {}
        #: Final stream-ingestion stats (epochs, ledger, cache reuse),
        #: when the run was a :mod:`repro.stream` session.
        self.stream_snapshot: Dict[str, Any] = {}
        #: Final intake-service stats (queue digests, shed counts, mode
        #: transitions), when the run was a :mod:`repro.serve` session.
        self.serve_snapshot: Dict[str, Any] = {}
        #: Final investigation-fleet stats (funnel outcomes, evidence
        #: volumes, step latency), when the run was a
        #: :mod:`repro.investigate` fleet.
        self.investigate_snapshot: Dict[str, Any] = {}
        #: Final per-pool execution stats (tasks, busy seconds per
        #: worker), captured from the :class:`~repro.exec.ExecutionEngine`.
        self.exec_snapshot: Dict[str, Any] = {}
        #: ``FunctionProfiler.snapshot()`` of a ``--profile`` run.
        self.function_snapshot: Dict[str, Any] = {}
        #: Every :class:`~repro.core.quarantine.QuarantineRecord` the
        #: sanitizer diverted this run. Empty on clean input — the
        #: Quarantine table and export key render only when non-empty,
        #: keeping ``--hostile none`` output byte-identical.
        self.quarantine_records: List[Any] = []

    # -- constructors ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        *,
        clock: Optional[Any] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> "Telemetry":
        """An enabled telemetry; ``progress`` receives span progress lines."""
        return cls(tracer=Tracer(clock=clock, sink=progress),
                   metrics=MetricsRegistry(), enabled=True)

    # -- meter wiring ---------------------------------------------------------

    def meter_hook(self) -> Callable[[str, str, float], None]:
        """The observer callback meters call on every charge/throttle.

        Events: ``request`` (successful charge), ``throttle`` (rate limit
        raised — i.e. the caller will retry), ``backoff`` (simulated
        seconds slept before a retry), ``quota`` (hard quota rejection).
        """
        metrics = self.metrics

        def hook(service: str, event: str, value: float) -> None:
            if event == "request":
                metrics.counter("service.requests", service=service).inc()
            elif event == "throttle":
                metrics.counter("service.retries", service=service).inc()
            elif event == "backoff":
                metrics.counter(
                    "service.backoff_seconds", service=service
                ).inc(value)
            elif event == "quota":
                metrics.counter("service.quota_rejections",
                                service=service).inc()

        return hook

    def capture_meter(self, meter: Any) -> None:
        """Store a meter's final ``snapshot()`` under its service name."""
        if not self.enabled:
            return
        self.meter_snapshots[meter.service] = meter.snapshot()

    # -- breaker wiring -------------------------------------------------------

    def breaker_hook(self) -> Callable[[str, str, float], None]:
        """The observer circuit breakers call on every state transition.

        Events: ``open`` (the breaker tripped), ``half_open`` (cool-down
        elapsed, probing), ``close`` (probe succeeded), ``fast_fail``
        (a call rejected while open).
        """
        metrics = self.metrics

        def hook(service: str, event: str, value: float) -> None:
            metrics.counter(f"resilience.breaker_{event}s",
                            service=service).inc(value)

        return hook

    def capture_breaker(self, breaker: Any) -> None:
        """Store a breaker's final ``snapshot()`` under its service name."""
        if not self.enabled:
            return
        self.breaker_snapshots[breaker.service] = breaker.snapshot()

    # -- cache wiring ---------------------------------------------------------

    def capture_cache(self, cache: Any) -> None:
        """Store the enrichment cache's final ``stats()`` and mirror its
        per-service hit/miss/eviction counts into the metrics registry
        (``cache.hits``/``cache.misses``/``cache.evictions``)."""
        if not self.enabled:
            return
        stats = cache.stats()
        self.cache_snapshot = stats
        for service, counters in stats.get("services", {}).items():
            for event in ("hits", "misses", "evictions"):
                if counters.get(event):
                    self.metrics.counter(f"cache.{event}",
                                         service=service).inc(counters[event])

    # -- checkpoint wiring ----------------------------------------------------

    def capture_checkpoint(self, stats: Optional[Dict[str, Any]]) -> None:
        """Store a checkpoint session's final ``stats()`` and mirror the
        write/replay volumes into counters (``checkpoint.barriers`` /
        ``checkpoint.lookups_recorded`` / ``checkpoint.lookups_replayed``).
        ``stats`` of None (an un-checkpointed run) is a no-op."""
        if not self.enabled or stats is None:
            return
        self.checkpoint_snapshot = dict(stats)
        for event in ("barriers_written", "lookups_recorded",
                      "lookups_replayed"):
            if stats.get(event):
                self.metrics.counter(
                    f"checkpoint.{event}", mode=stats["mode"]
                ).inc(stats[event])

    # -- stream wiring --------------------------------------------------------

    def capture_stream(self, stats: Optional[Dict[str, Any]]) -> None:
        """Store a stream session's final stats (see
        :meth:`repro.stream.StreamState.stats`) and mirror the dedup
        ledger's hit/miss volumes into counters
        (``stream.ledger_hits`` / ``stream.ledger_misses``).
        ``stats`` of None (a batch run) is a no-op."""
        if not self.enabled or stats is None:
            return
        self.stream_snapshot = dict(stats)
        ledger = stats.get("ledger", {})
        for event in ("hits", "misses"):
            if ledger.get(event):
                self.metrics.counter(
                    f"stream.ledger_{event}"
                ).inc(ledger[event])

    # -- serve wiring ---------------------------------------------------------

    def capture_serve(self, stats: Optional[Dict[str, Any]]) -> None:
        """Store an intake service's final ``stats()`` (see
        :meth:`repro.serve.IntakeService.stats`). ``stats`` of None (a
        non-serve run) is a no-op."""
        if not self.enabled or stats is None:
            return
        self.serve_snapshot = dict(stats)

    # -- investigate wiring ---------------------------------------------------

    def capture_investigate(self, stats: Optional[Dict[str, Any]]) -> None:
        """Store an investigation fleet's final ``stats()`` (see
        :meth:`repro.investigate.FleetReport.stats`). ``stats`` of None
        (a non-investigate run) is a no-op."""
        if not self.enabled or stats is None:
            return
        self.investigate_snapshot = dict(stats)

    # -- quarantine wiring ----------------------------------------------------

    def capture_quarantine(self, records) -> None:
        """Accumulate sanitizer quarantine records.

        Additive on purpose: stream epochs and serve batches each run
        their own :class:`~repro.core.curation.Curator`, and each
        contributes only the reports *it* diverted."""
        if not self.enabled or not records:
            return
        self.quarantine_records.extend(records)

    def _quarantine_dict(self) -> Dict[str, Any]:
        if not self.quarantine_records:
            return {}
        by_reason: Dict[str, int] = {}
        by_stage: Dict[str, int] = {}
        for record in self.quarantine_records:
            by_reason[record.reason] = by_reason.get(record.reason, 0) + 1
            by_stage[record.stage] = by_stage.get(record.stage, 0) + 1
        return {
            "total": len(self.quarantine_records),
            "by_reason": by_reason,
            "by_stage": by_stage,
        }

    # -- profiling wiring -----------------------------------------------------

    def capture_exec(self, stats: Optional[Dict[str, Any]]) -> None:
        """Store the execution engine's final per-pool task accounting."""
        if not self.enabled or not stats:
            return
        self.exec_snapshot = dict(stats)

    def capture_function_profile(
            self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Store a ``--profile`` run's FunctionProfiler snapshot."""
        if not self.enabled or not snapshot:
            return
        self.function_snapshot = dict(snapshot)

    def profile(self) -> Profile:
        """Hot-path attribution built from this run's spans."""
        return build_profile(self.tracer.spans)

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        # The quarantine block exists only when something was diverted:
        # a clean run's trace export stays byte-identical to pre-hostile
        # behaviour.
        quarantine = self._quarantine_dict()
        extra = {"quarantine": quarantine} if quarantine else {}
        return {
            "format": TRACE_FORMAT_VERSION,
            "spans": self.tracer.to_dicts(),
            "metrics": self.metrics.to_dict(),
            "profile": self.profile().to_dict(),
            "meters": {name: dict(snap)
                       for name, snap in self.meter_snapshots.items()},
            "breakers": {name: dict(snap)
                         for name, snap in self.breaker_snapshots.items()},
            "cache": dict(self.cache_snapshot),
            "checkpoint": dict(self.checkpoint_snapshot),
            "stream": dict(self.stream_snapshot),
            "serve": dict(self.serve_snapshot),
            "investigate": dict(self.investigate_snapshot),
            "exec": dict(self.exec_snapshot),
            "functions": dict(self.function_snapshot),
            **extra,
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The run's spans as a Chrome trace-event document."""
        return chrome_trace(self.tracer.spans)

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2, default=str)

    # -- human-readable summaries ---------------------------------------------

    def span_table(self) -> Table:
        """Stage timings: wall-clock and simulated seconds per span."""
        table = Table(title="Pipeline stages",
                      columns=["Stage", "Wall (s)", "Sim (s)", "Detail"])
        for span in self.tracer.spans:
            interesting = {
                k: v for k, v in span.attributes.items()
                if isinstance(v, (int, float, str)) and k != "error"
            }
            detail = ", ".join(f"{k}={v}" for k, v in
                               sorted(interesting.items())[:4])
            table.add_row(
                span.name,
                round(span.wall_seconds, 4)
                if span.wall_seconds is not None else None,
                round(span.sim_seconds, 1)
                if span.sim_seconds is not None else None,
                detail or None,
            )
        return table

    def profile_table(self) -> Table:
        """Hot-path attribution: self/cum wall, latency digests, rec/s."""
        return self.profile().table()

    def function_table(self) -> Table:
        """Function-level hot spots from a ``--profile`` run."""
        return function_table(self.function_snapshot)

    def service_table(self) -> Table:
        """Per-service request/retry/backoff accounting from counters."""
        services: Dict[str, Dict[str, float]] = {}
        for counter in self.metrics.counters():
            service = counter.labels.get("service")
            if service is None or not counter.name.startswith("service."):
                continue
            field = counter.name.split(".", 1)[1]
            services.setdefault(service, {})[field] = counter.value
        table = Table(
            title="Service telemetry",
            columns=["Service", "Requests", "Retries", "Backoff (sim s)",
                     "Quota hits", "Remaining"],
        )
        for service in sorted(services):
            fields = services[service]
            snapshot = self.meter_snapshots.get(service, {})
            remaining = snapshot.get("remaining")
            table.add_row(
                service,
                int(fields.get("requests", 0)),
                int(fields.get("retries", 0)),
                round(fields.get("backoff_seconds", 0.0), 1),
                int(fields.get("quota_rejections", 0)),
                "∞" if remaining is None else int(remaining),
            )
        return table

    def resilience_table(self) -> Table:
        """Per-service retry/breaker accounting from the resilience layer."""
        services: Dict[str, Dict[str, float]] = {}
        for counter in self.metrics.counters():
            service = counter.labels.get("service")
            if service is None or not counter.name.startswith("resilience."):
                continue
            field = counter.name.split(".", 1)[1]
            services.setdefault(service, {})[field] = counter.value
        for service in self.breaker_snapshots:
            services.setdefault(service, {})
        table = Table(
            title="Resilience",
            columns=["Service", "Retries", "Backoff (sim s)", "Breaker",
                     "Opens", "Fast fails"],
        )
        for service in sorted(services):
            fields = services[service]
            snapshot = self.breaker_snapshots.get(service, {})
            table.add_row(
                service,
                int(fields.get("retries", 0)),
                round(fields.get("backoff_seconds", 0.0), 1),
                snapshot.get("state", "-"),
                int(snapshot.get("opens", fields.get("breaker_opens", 0))),
                int(snapshot.get("fast_fails",
                                 fields.get("breaker_fast_fails", 0))),
            )
        return table

    def cache_table(self) -> Table:
        """Per-service enrichment-cache accounting (hits, misses, ...)."""
        table = Table(
            title="Cache",
            columns=["Service", "Hits", "Misses", "Hit rate", "Stores",
                     "Evictions"],
        )
        services = self.cache_snapshot.get("services", {})
        for service in sorted(services):
            counters = services[service]
            lookups = counters["hits"] + counters["misses"]
            rate = counters["hits"] / lookups if lookups else 0.0
            table.add_row(
                service,
                counters["hits"],
                counters["misses"],
                f"{rate:.1%}",
                counters["stores"],
                counters["evictions"],
            )
        if len(services) > 1:
            totals = self.cache_snapshot.get("totals", {})
            table.add_row(
                "(total)",
                totals.get("hits", 0),
                totals.get("misses", 0),
                f"{self.cache_snapshot.get('hit_rate', 0.0):.1%}",
                totals.get("stores", 0),
                totals.get("evictions", 0),
            )
        return table

    def pool_table(self) -> Table:
        """Per-pool task accounting from the execution engine.

        Only deterministic columns are rendered: busy-seconds come from
        the unfrozen ``time.perf_counter`` and would break byte-stable
        stats goldens, so they are exported via :meth:`to_dict` only.
        """
        table = Table(title="Pools",
                      columns=["Pool", "Kind", "Workers", "Tasks"])
        snapshot = self.exec_snapshot
        for pool in snapshot.get("pools", []):
            table.add_row(
                pool.get("label", "-"),
                pool.get("kind", "-"),
                int(pool.get("workers", 1)),
                int(pool.get("tasks", 0)),
            )
        policy = snapshot.get("policy")
        if policy:
            table.add_note(f"policy: {policy}")
        return table

    def checkpoint_table(self) -> Table:
        """Journal accounting: mode, restored stages, replay volumes."""
        table = Table(title="Checkpoint", columns=["Field", "Value"])
        snapshot = self.checkpoint_snapshot
        if not snapshot:
            return table
        restored = snapshot.get("stages_restored") or []
        table.add_row("Mode", snapshot.get("mode", "-"))
        table.add_row("Stages restored", ", ".join(restored) or "none")
        table.add_row("Barriers written",
                      int(snapshot.get("barriers_written", 0)))
        table.add_row("Lookups replayed",
                      int(snapshot.get("lookups_replayed", 0)))
        table.add_row("Lookups recorded",
                      int(snapshot.get("lookups_recorded", 0)))
        table.add_row("Journal writes", int(snapshot.get("journal_writes", 0)))
        table.add_row("Journal recovered",
                      "yes" if snapshot.get("journal_recovered") else "no")
        return table

    def stream_table(self) -> Table:
        """Per-epoch ingestion accounting for stream sessions."""
        table = Table(
            title="Stream",
            columns=["Epoch", "Window", "Posts", "New reports", "Records",
                     "Deduped", "Gaps", "Cache reuse"],
        )
        snapshot = self.stream_snapshot
        for epoch in snapshot.get("epochs", []):
            table.add_row(
                epoch["index"],
                epoch.get("window", "-"),
                epoch.get("posts_seen", 0),
                epoch.get("new_reports", 0),
                epoch.get("records", 0),
                epoch.get("deduped", 0),
                epoch.get("gaps", 0) + epoch.get("limitations", 0),
                epoch.get("cache_reuse", 0),
            )
        ledger = snapshot.get("ledger", {})
        table.add_row(
            "(ledger)",
            f"hit rate {ledger.get('hit_rate', 0.0):.1%}",
            None,
            None,
            ledger.get("entries", 0),
            ledger.get("hits", 0),
            None,
            snapshot.get("cache_reuse", 0),
        )
        return table

    def serve_table(self) -> Table:
        """Intake-service accounting: admission, queue, latency SLOs."""
        table = Table(title="Serve", columns=["Field", "Value"])
        snapshot = self.serve_snapshot
        if not snapshot:
            return table
        load = snapshot.get("load", {})
        table.add_row("Load profile",
                      f"{load.get('profile', '-')} "
                      f"({load.get('requests', 0)} requests, "
                      f"{load.get('reporters', 0)} reporters)")
        table.add_row("Submitted", int(snapshot.get("submitted", 0)))
        table.add_row("Accepted", int(snapshot.get("accepted", 0)))
        shed = snapshot.get("rejected_by_reason", {})
        shed_detail = ", ".join(f"{reason}={count}"
                                for reason, count in sorted(shed.items()))
        table.add_row("Shed", f"{snapshot.get('shed', 0)}"
                              + (f" ({shed_detail})" if shed_detail else ""))
        table.add_row("Processed", int(snapshot.get("processed", 0)))
        table.add_row("Timed out in queue", int(snapshot.get("timed_out", 0)))
        table.add_row("Records (deduped)",
                      f"{snapshot.get('records', 0)} "
                      f"({snapshot.get('deduped', 0)} dupes)")
        table.add_row("Batches (degraded)",
                      f"{snapshot.get('batches', 0)} "
                      f"({snapshot.get('degraded_batches', 0)} annotate-only)")
        queue = snapshot.get("queue", {})
        table.add_row(
            "Queue depth p50/p90/p99/max",
            "/".join(str(int(queue.get(key) or 0))
                     for key in ("p50", "p90", "p99"))
            + f"/{int(queue.get('max_depth', 0))}"
            + f" (cap {int(queue.get('capacity', 0))})",
        )
        latency = snapshot.get("latency", {})
        table.add_row(
            "Intake latency p50/p99 (sim s)",
            f"{(latency.get('p50') or 0.0):.1f}/"
            f"{(latency.get('p99') or 0.0):.1f}",
        )
        table.add_row("Final mode", snapshot.get("mode", "-"))
        return table

    def serve_transition_table(self) -> Table:
        """The degradation controller's mode history."""
        table = Table(title="Serve mode transitions",
                      columns=["Sim t (s)", "From", "To", "Reason"])
        for transition in self.serve_snapshot.get("transitions", []):
            table.add_row(
                transition["at"],
                transition["from_mode"],
                transition["to_mode"],
                transition["reason"],
            )
        return table

    def investigate_table(self) -> Table:
        """Investigation-fleet accounting: funnels, evidence, latency."""
        table = Table(title="Investigations", columns=["Field", "Value"])
        snapshot = self.investigate_snapshot
        if not snapshot:
            return table
        pool = snapshot.get("pool", {})
        table.add_row("Playbook", snapshot.get("playbook", "-"))
        table.add_row("Investigated URLs",
                      int(snapshot.get("investigated", 0)))
        outcomes = snapshot.get("outcomes", {})
        table.add_row(
            "Outcomes",
            ", ".join(f"{kind}={count}"
                      for kind, count in sorted(outcomes.items())) or "none",
        )
        depths = snapshot.get("funnel_depths", {})
        table.add_row(
            "Funnel depth distribution",
            ", ".join(f"{depth}:{count}"
                      for depth, count in sorted(depths.items())) or "none",
        )
        table.add_row(
            "Evidence packages",
            f"{snapshot.get('evidence_packages', 0)} "
            f"({snapshot.get('custody_entries', 0)} custody entries)",
        )
        table.add_row(
            "Payloads",
            f"{snapshot.get('payloads', 0)} "
            f"({snapshot.get('androzoo_hits', 0)} known to AndroZoo)",
        )
        table.add_row(
            "Scans (gaps)",
            f"{snapshot.get('scans_completed', 0)} "
            f"({snapshot.get('scan_gaps', 0)} gaps)",
        )
        families = snapshot.get("families", {})
        table.add_row(
            "Families",
            ", ".join(f"{family}={count}"
                      for family, count in sorted(families.items())) or "none",
        )
        for op, digest in sorted(
                snapshot.get("step_latency_ms", {}).items()):
            table.add_row(
                f"Step {op} p50/p99 (ms)",
                f"{digest.get('p50', 0.0):.1f}/{digest.get('p99', 0.0):.1f}"
                f" (n={int(digest.get('count', 0))})",
            )
        table.add_row("Pool",
                      f"{pool.get('kind', 'serial')} "
                      f"× {int(pool.get('workers', 1))}")
        return table

    def quarantine_table(self) -> Table:
        """Sanitizer accounting: diverted reports by reason and stage."""
        table = Table(title="Quarantine",
                      columns=["Reason", "Stage", "Records"])
        groups: Dict[tuple, int] = {}
        for record in self.quarantine_records:
            key = (record.reason, record.stage)
            groups[key] = groups.get(key, 0) + 1
        for reason, stage in sorted(groups):
            table.add_row(reason, stage, groups[(reason, stage)])
        if len(groups) > 1:
            table.add_row("(total)", None, len(self.quarantine_records))
        return table

    def counter_table(self) -> Table:
        """Every non-service counter (collection, curation, drops...)."""
        table = Table(title="Run counters",
                      columns=["Counter", "Labels", "Value"])
        for counter in sorted(self.metrics.counters(),
                              key=lambda c: (c.name, sorted(c.labels.items()))):
            if counter.name.startswith(("service.", "resilience.", "cache.",
                                        "checkpoint.", "stream.")):
                continue
            labels = ", ".join(f"{k}={v}" for k, v in
                               sorted(counter.labels.items()))
            value = counter.value
            table.add_row(counter.name, labels or None,
                          int(value) if value == int(value) else value)
        return table

    def summary(self) -> str:
        """The full human-readable stats report."""
        parts = [self.span_table().to_text(),
                 self.profile_table().to_text(),
                 self.service_table().to_text()]
        if self.function_snapshot:
            parts.insert(2, self.function_table().to_text())
        resilience = self.resilience_table()
        if resilience.rows:
            parts.append(resilience.to_text())
        if self.cache_snapshot:
            parts.append(self.cache_table().to_text())
        if self.exec_snapshot:
            parts.append(self.pool_table().to_text())
        if self.checkpoint_snapshot:
            parts.append(self.checkpoint_table().to_text())
        if self.stream_snapshot:
            parts.append(self.stream_table().to_text())
        if self.serve_snapshot:
            parts.append(self.serve_table().to_text())
            transitions = self.serve_transition_table()
            if transitions.rows:
                parts.append(transitions.to_text())
        if self.investigate_snapshot:
            parts.append(self.investigate_table().to_text())
        if self.quarantine_records:
            parts.append(self.quarantine_table().to_text())
        parts.append(self.counter_table().to_text())
        return "\n\n".join(parts)


#: Shared disabled telemetry: no spans, no counters, near-zero overhead.
NULL_TELEMETRY = Telemetry(tracer=NullTracer(), metrics=NullMetrics(),
                           enabled=False)


def ensure_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Normalise an optional telemetry argument to a usable instance."""
    return NULL_TELEMETRY if telemetry is None else telemetry
