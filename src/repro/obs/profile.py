"""Profiling: hot-path attribution, latency digests, trace export.

This is the *analysis* half of the performance observatory. The tracer
(:mod:`repro.obs.trace`) records raw spans; this module turns them into
the numbers an optimisation effort actually needs:

* :class:`PercentileDigest` — a deterministic quantile summary (exact
  linear interpolation over the sorted sample, no sketching) so two
  runs over the same spans always report the same p50/p90/p99.
* :func:`build_profile` — per-stage **self** vs **cumulative** wall-time
  attribution: a stage's self time is its own wall time minus the wall
  time of its direct children, so ``enrich`` no longer absorbs credit
  for ``enrich/urls``. Stages aggregate by span name (the pipeline's
  span names *are* its stage/service taxonomy), carry call counts,
  latency digests over per-span durations, and records/sec throughput
  off the ``records``/``reports`` span attributes.
* :func:`chrome_trace` — the span tree as Chrome trace-event JSON
  (``ph: "X"`` complete events, microsecond timestamps) so any run
  opens directly in Perfetto / ``chrome://tracing``.
* :class:`FunctionProfiler` — optional function-level profiling
  (``cProfile`` plus a ``tracemalloc`` peak) behind the ``--profile``
  flag. It only *observes* the interpreter: no RNG, no clock, no meter
  is touched, which is why profiled runs stay byte-identical to
  unprofiled ones (``tests/test_profile_determinism.py``).

Wall-clock numbers are observability output, never model input: nothing
in this module feeds back into the pipeline, so none of it can leak
into a run fingerprint.

Zero-dependency constraint: standard library only.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..utils.tables import Table
from .trace import Span

#: Span attributes that count as "records processed" for throughput,
#: first match wins (stages name their unit differently).
THROUGHPUT_ATTRS = ("records", "reports", "records_out", "posts_seen")

#: Chrome trace JSON schema marker written into ``otherData``.
CHROME_TRACE_VERSION = 1


class PercentileDigest:
    """Deterministic quantile summary of a sample.

    Keeps the raw values and answers quantiles by linear interpolation
    over the sorted sample (the classic "type 7" estimator). That makes
    every quantile a pure function of the multiset of values: invariant
    under permutation, monotone in ``q``, and bounded by min/max — the
    properties ``tests/test_properties.py`` pins.
    """

    __slots__ = ("_values", "_dirty")

    def __init__(self, values: Iterable[float] = ()):
        self._values: List[float] = [float(v) for v in values]
        self._dirty = True

    def add(self, value: float) -> None:
        self._values.append(float(value))
        self._dirty = True

    def merge(self, other: "PercentileDigest") -> None:
        self._values.extend(other._values)
        self._dirty = True

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def min(self) -> Optional[float]:
        return min(self._values) if self._values else None

    @property
    def max(self) -> Optional[float]:
        return max(self._values) if self._values else None

    @property
    def mean(self) -> Optional[float]:
        if not self._values:
            return None
        return sum(self._values) / len(self._values)

    def _sorted(self) -> List[float]:
        if self._dirty:
            self._values.sort()
            self._dirty = False
        return self._values

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (0 <= q <= 1), or None on an empty sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile wants 0 <= q <= 1, got {q}")
        values = self._sorted()
        if not values:
            return None
        position = q * (len(values) - 1)
        lower = int(position)
        upper = min(lower + 1, len(values) - 1)
        fraction = position - lower
        return values[lower] + (values[upper] - values[lower]) * fraction

    @property
    def p50(self) -> Optional[float]:
        return self.quantile(0.50)

    @property
    def p90(self) -> Optional[float]:
        return self.quantile(0.90)

    @property
    def p99(self) -> Optional[float]:
        return self.quantile(0.99)

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "p50": self.p50, "p90": self.p90,
                "p99": self.p99, "min": self.min, "max": self.max,
                "mean": self.mean}


@dataclass
class StageProfile:
    """Aggregated timing for every span sharing one name."""

    name: str
    count: int = 0
    #: Spans that never closed (crashed/abandoned); excluded from the
    #: digests but still visible so a crash is not silently dropped.
    unfinished: int = 0
    cum_seconds: float = 0.0
    self_seconds: float = 0.0
    records: int = 0
    durations: PercentileDigest = field(default_factory=PercentileDigest)

    @property
    def records_per_sec(self) -> Optional[float]:
        """Throughput over cumulative wall time; None when unmeasurable."""
        if self.records <= 0 or self.cum_seconds <= 0.0:
            return None
        return self.records / self.cum_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "unfinished": self.unfinished,
            "cum_seconds": self.cum_seconds,
            "self_seconds": self.self_seconds,
            "records": self.records,
            "records_per_sec": self.records_per_sec,
            "latency": self.durations.to_dict(),
        }


class Profile:
    """Hot-path view of one run: stages keyed by span name."""

    def __init__(self, stages: Dict[str, StageProfile],
                 total_seconds: float):
        self.stages = stages
        #: Wall time of the root spans (spans with no parent).
        self.total_seconds = total_seconds

    def hot_paths(self) -> List[StageProfile]:
        """Stages by self time, heaviest first (name-sorted on ties)."""
        return sorted(self.stages.values(),
                      key=lambda s: (-s.self_seconds, s.name))

    def table(self) -> Table:
        """The `repro stats` "Hot paths" table."""
        table = Table(
            title="Hot paths",
            columns=["Stage", "Count", "Self (s)", "Cum (s)", "Self %",
                     "p50 (ms)", "p90 (ms)", "p99 (ms)", "Rec/s"],
        )
        total = self.total_seconds

        def _ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value * 1000.0, 2)

        for stage in self.hot_paths():
            share = (f"{stage.self_seconds / total:.1%}"
                     if total > 0 else None)
            rate = stage.records_per_sec
            table.add_row(
                stage.name,
                stage.count if not stage.unfinished
                else f"{stage.count} ({stage.unfinished} unfinished)",
                round(stage.self_seconds, 4),
                round(stage.cum_seconds, 4),
                share,
                _ms(stage.durations.p50),
                _ms(stage.durations.p90),
                _ms(stage.durations.p99),
                round(rate, 1) if rate is not None else None,
            )
        return table

    def stage_summary(self) -> Dict[str, Dict[str, Any]]:
        """Compact per-stage dict for run-history records."""
        summary = {}
        for name, stage in self.stages.items():
            digest = stage.durations
            summary[name] = {
                "count": stage.count,
                "unfinished": stage.unfinished,
                "cum": stage.cum_seconds,
                "self": stage.self_seconds,
                "records": stage.records,
                "records_per_sec": stage.records_per_sec,
                "p50": digest.p50, "p90": digest.p90, "p99": digest.p99,
            }
        return summary

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_seconds": self.total_seconds,
            "stages": [stage.to_dict() for stage in self.hot_paths()],
        }


def _throughput(span: Span) -> int:
    for attr in THROUGHPUT_ATTRS:
        value = span.attributes.get(attr)
        if isinstance(value, (int, float)):
            return int(value)
    return 0


def build_profile(spans: Iterable[Span]) -> Profile:
    """Aggregate spans into per-stage self/cumulative attribution.

    Self time is a span's wall time minus the wall time of its *direct*
    children; unfinished spans (``end_wall`` is None — a crashed or
    abandoned region) contribute nothing to the timings but are counted,
    so a partial trace still profiles cleanly.
    """
    spans = list(spans)
    children_seconds: Dict[int, float] = {}
    for span in spans:
        wall = span.wall_seconds
        if span.parent_id is not None and wall is not None:
            children_seconds[span.parent_id] = (
                children_seconds.get(span.parent_id, 0.0) + wall)

    stages: Dict[str, StageProfile] = {}
    total = 0.0
    for span in spans:
        stage = stages.get(span.name)
        if stage is None:
            stage = stages[span.name] = StageProfile(span.name)
        stage.count += 1
        stage.records += _throughput(span)
        wall = span.wall_seconds
        if wall is None:
            stage.unfinished += 1
            continue
        stage.cum_seconds += wall
        stage.self_seconds += max(
            0.0, wall - children_seconds.get(span.span_id, 0.0))
        stage.durations.add(wall)
        if span.parent_id is None:
            total += wall
    return Profile(stages, total)


def chrome_trace(spans: Iterable[Span], *,
                 process_name: str = "repro") -> Dict[str, Any]:
    """The span tree as a Chrome trace-event JSON document.

    Every finished span becomes one complete (``ph: "X"``) event with
    microsecond ``ts``/``dur``; unfinished spans become zero-duration
    instants flagged ``unfinished`` so crashes remain visible on the
    timeline. Open the file in Perfetto or ``chrome://tracing``.
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]
    for span in spans:
        args = {key: value for key, value in span.attributes.items()
                if isinstance(value, (str, int, float, bool))}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event = {
            "name": span.name,
            "cat": span.name.split("/", 1)[0],
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": round(span.start_wall * 1e6, 3),
            "dur": (round(span.wall_seconds * 1e6, 3)
                    if span.wall_seconds is not None else 0.0),
            "args": args,
        }
        if span.end_wall is None:
            event["args"]["unfinished"] = True
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": CHROME_TRACE_VERSION,
                      "producer": "repro.obs.profile"},
    }


class FunctionProfiler:
    """Function-level profiling behind ``--profile``.

    Wraps ``cProfile`` (deterministic tracing profiler, pure observer)
    and optionally ``tracemalloc`` for a peak-memory reading. Use as a
    context manager around the run; :meth:`snapshot` yields the
    serialisable result the telemetry captures.
    """

    def __init__(self, *, top: int = 15, trace_memory: bool = True):
        if top < 1:
            raise ValueError(f"top must be >= 1, got {top}")
        self.top = top
        self.trace_memory = trace_memory
        self._profile = cProfile.Profile()
        self._memory_peak: Optional[int] = None
        self._active = False

    def start(self) -> None:
        if self._active:
            return
        if self.trace_memory:
            import tracemalloc
            tracemalloc.start()
        self._profile.enable()
        self._active = True

    def stop(self) -> None:
        if not self._active:
            return
        self._profile.disable()
        if self.trace_memory:
            import tracemalloc
            self._memory_peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
        self._active = False

    def __enter__(self) -> "FunctionProfiler":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def top_functions(self) -> List[Dict[str, Any]]:
        """The costliest functions by cumulative time, heaviest first."""
        stats = pstats.Stats(self._profile)
        rows = []
        for func, (_, ncalls, tottime, cumtime, _) in stats.stats.items():
            filename, line, name = func
            location = (name if filename.startswith(("~", "<"))
                        else f"{filename.rsplit('/', 1)[-1]}:{line}:{name}")
            rows.append({"function": location, "calls": ncalls,
                         "self_seconds": tottime,
                         "cum_seconds": cumtime})
        rows.sort(key=lambda r: (-r["cum_seconds"], r["function"]))
        return rows[: self.top]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "top_functions": self.top_functions(),
            "memory_peak_bytes": self._memory_peak,
        }


def function_table(snapshot: Dict[str, Any]) -> Table:
    """The `repro stats --profile` "Function hot spots" table."""
    table = Table(
        title="Function hot spots",
        columns=["Function", "Calls", "Self (s)", "Cum (s)"],
    )
    for row in snapshot.get("top_functions", ()):
        table.add_row(row["function"], row["calls"],
                      round(row["self_seconds"], 4),
                      round(row["cum_seconds"], 4))
    peak = snapshot.get("memory_peak_bytes")
    if peak is not None:
        table.add_note(f"tracemalloc peak: {peak / 1024:,.0f} KiB")
    return table
