"""Span tracing for pipeline runs.

A :class:`Tracer` produces nested :class:`Span` records — ``pipeline →
collect/<forum> → curate → enrich/<service> → annotate`` — each stamped
with wall-clock time (``time.perf_counter``) and, when a
:class:`~repro.services.base.SimClock` is bound, simulated time. Spans
carry free-form attributes (counts, drop reasons, meter deltas) and
serialise to plain dicts for JSON export.

When tracing is disabled the pipeline runs against :class:`NullTracer`,
whose ``span()`` hands back one shared, immutable no-op handle — no
``Span`` objects are allocated, so the disabled overhead is a single
method call per instrumentation site.

Zero-dependency constraint: this module may import only the standard
library (``time``) so ``repro.obs`` can be lifted into any service.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One timed, attributed region of a pipeline run."""

    __slots__ = ("name", "span_id", "parent_id", "start_wall", "end_wall",
                 "start_sim", "end_sim", "attributes")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 start_wall: float, start_sim: Optional[float] = None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_wall = start_wall
        self.end_wall: Optional[float] = None
        self.start_sim = start_sim
        self.end_sim: Optional[float] = None
        self.attributes: Dict[str, Any] = {}

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def finished(self) -> bool:
        return self.end_wall is not None

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.end_wall is None:
            return None
        return self.end_wall - self.start_wall

    @property
    def sim_seconds(self) -> Optional[float]:
        if self.start_sim is None or self.end_sim is None:
            return None
        return self.end_sim - self.start_sim

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_seconds})"


class _SpanContext:
    """Context-manager handle pairing a tracer with an open span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.set(error=f"{exc_type.__name__}: {exc}")
        self._tracer.end(self._span)
        return False


class Tracer:
    """Collects nested spans for one run.

    ``sink``, when given, receives one human-readable progress line per
    span start/finish — the CLI points it at stderr so long runs are not
    mute. ``clock`` (anything with a ``.now`` float attribute, i.e.
    :class:`SimClock`) adds simulated-time stamps.
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Optional[Any] = None,
        sink: Optional[Callable[[str], None]] = None,
        time_source: Callable[[], float] = time.perf_counter,
    ):
        self._clock = clock
        self._sink = sink
        self._time = time_source
        self._next_id = 1
        self._stack: List[Span] = []
        self.spans: List[Span] = []

    def bind_clock(self, clock: Any) -> None:
        """Attach a simulated clock if none was bound at construction."""
        if self._clock is None:
            self._clock = clock

    def _sim_now(self) -> Optional[float]:
        return None if self._clock is None else float(self._clock.now)

    def _depth_of(self, span: Span) -> int:
        for index, open_span in enumerate(self._stack):
            if open_span.span_id == span.span_id:
                return index
        return len(self._stack)

    # -- span lifecycle -------------------------------------------------------

    def start(self, name: str, **attributes: Any) -> Span:
        """Open a span manually; pair with :meth:`end`."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(name, self._next_id, parent, self._time(),
                    start_sim=self._sim_now())
        self._next_id += 1
        if attributes:
            span.attributes.update(attributes)
        self._stack.append(span)
        self.spans.append(span)
        if self._sink is not None:
            self._sink(f"{'  ' * (len(self._stack) - 1)}▶ {name}")
        return span

    def end(self, span: Span) -> None:
        """Close a span (and any unclosed children left on the stack)."""
        if span.finished:
            return
        depth = self._depth_of(span)
        while self._stack and self._stack[-1].span_id != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        span.end_wall = self._time()
        span.end_sim = self._sim_now()
        if self._sink is not None:
            detail = f" ({span.wall_seconds:.3f}s"
            if span.sim_seconds:
                detail += f", sim {span.sim_seconds:,.0f}s"
            detail += ")"
            self._sink(f"{'  ' * depth}✓ {span.name}{detail}")

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """``with tracer.span("stage") as sp: ...`` — opens and auto-ends."""
        return _SpanContext(self, self.start(name, **attributes))

    def open_spans(self) -> List[Span]:
        """Spans started but not yet ended, outermost first."""
        return list(self._stack)

    def abandon_open(self, error: Optional[str] = None) -> List[Span]:
        """End every still-open span, flagging it ``abandoned``.

        Called from run teardown (a ``finally``) so a crashed run's
        trace is coherent: every span either finished normally or is
        explicitly marked. Spans that escaped the stack entirely (an
        unclosed child popped by an ancestor's :meth:`end`) keep
        ``end_wall=None`` — serialisation and profiling treat a None
        duration as "unfinished", never as zero.
        """
        abandoned = []
        while self._stack:
            span = self._stack[-1]
            span.set(abandoned=1)
            if error is not None:
                span.set(error=error)
            self.end(span)
            abandoned.append(span)
        return abandoned

    # -- introspection --------------------------------------------------------

    def find(self, name: str) -> List[Span]:
        """All spans with exactly this name, in start order."""
        return [s for s in self.spans if s.name == name]

    def names(self) -> List[str]:
        return [s.name for s in self.spans]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self.spans]


class _NullSpan:
    """Shared no-op span handle: context manager and attribute sink."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The single no-op span every NullTracer call returns.
NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every call returns the shared no-op handle."""

    enabled = False
    spans: tuple = ()

    def bind_clock(self, clock: Any) -> None:
        pass

    def open_spans(self) -> List[Span]:
        return []

    def abandon_open(self, error: Optional[str] = None) -> List[Span]:
        return []

    def start(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def end(self, span: Any) -> None:
        pass

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def find(self, name: str) -> List[Span]:
        return []

    def names(self) -> List[str]:
        return []

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []
