"""Run history: a durable RUNS.jsonl of per-run performance records.

Every pipeline or stream run can append one summarized record to
``<history-dir>/RUNS.jsonl`` (``--history-dir``): config and scenario
digests, per-stage wall-time attribution (from
:func:`repro.obs.profile.build_profile`), records/sec, charged service
calls, cache hit rate, and gap/limitation counts. The store is the
substrate for two consumers:

* ``repro stats --history`` — trend tables over the recorded runs, with
  a delta column against each run's *previous comparable* run (same
  config digest, so a ``--workers 4`` run is never judged against a
  ``--workers 1`` baseline);
* ``scripts/perf_gate.py`` — the perf regression gate:
  :func:`compare_runs` diffs the latest record against a baseline
  artifact under :class:`GateThresholds` and reports every stage
  slowdown or charged-call increase beyond threshold.

The file is bounded: appends past ``max_entries`` rewrite the ledger
keeping only the newest records (atomic replace), so a long-lived
history directory never grows without bound — the property tests in
``tests/test_properties.py`` pin retention and growth.

Determinism note: wall-clock values live *only* in these records and
the tables rendered from them; nothing here is read back into a run.
History records carry no wall-clock datetime — runs are ordered by the
monotonically increasing ``sequence`` the store assigns — so the store
itself is a pure function of the runs appended to it.

Zero-dependency constraint: standard library only.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..utils.tables import Table
from .profile import build_profile

#: The ledger file name inside a history directory.
RUNS_NAME = "RUNS.jsonl"
#: Record schema version, bumped on incompatible layout changes.
HISTORY_FORMAT_VERSION = 1


def _digest(payload: Any) -> str:
    """A short stable digest of any JSON-serialisable payload."""
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def build_run_record(*, command: str, config: Dict[str, Any],
                     telemetry, counts: Dict[str, int]) -> Dict[str, Any]:
    """Summarize one finished run into a history record.

    ``config`` is the run-shaping knobs (seed, campaigns, faults,
    workers, cache, epochs); its digest decides which runs are
    comparable. ``counts`` carries the outcome volumes (reports,
    records, gaps, limitations).
    """
    profile = build_profile(telemetry.tracer.spans)
    charged = {name: int(snapshot.get("used", 0))
               for name, snapshot in sorted(telemetry.meter_snapshots.items())}
    cache = telemetry.cache_snapshot or {}
    totals = cache.get("totals", {})
    record: Dict[str, Any] = {
        "format": HISTORY_FORMAT_VERSION,
        "sequence": None,  # assigned by RunHistory.append
        "command": command,
        "config": dict(config),
        "config_digest": _digest({"command": command, **config}),
        "wall_seconds": profile.total_seconds,
        "stages": profile.stage_summary(),
        "counts": {key: int(value) for key, value in sorted(counts.items())},
        "charged": charged,
        "charged_total": sum(charged.values()),
        "cache": {
            "hits": int(totals.get("hits", 0)),
            "misses": int(totals.get("misses", 0)),
            "hit_rate": float(cache.get("hit_rate", 0.0)),
        },
        "exec": dict(telemetry.exec_snapshot),
    }
    records_n = int(counts.get("records", 0) or 0)
    # End-to-end throughput; None when the tracer clock is frozen (tests)
    # or the run produced no records, so gates can skip it cleanly.
    record["records_per_sec"] = (
        records_n / profile.total_seconds
        if profile.total_seconds and records_n else None
    )
    investigate = getattr(telemetry, "investigate_snapshot", None) or {}
    if investigate:
        investigated = int(investigate.get("investigated", 0))
        # Fleet throughput mirrors records_per_sec: None under a frozen
        # tracer clock or an empty fleet, so gates skip it cleanly.
        record["investigate"] = {
            "playbook": investigate.get("playbook", "-"),
            "investigated": investigated,
            "evidence_packages": int(
                investigate.get("evidence_packages", 0)),
            "scans_completed": int(investigate.get("scans_completed", 0)),
            "scan_gaps": int(investigate.get("scan_gaps", 0)),
        }
        record["investigations_per_sec"] = (
            investigated / profile.total_seconds
            if profile.total_seconds and investigated else None
        )
    serve = getattr(telemetry, "serve_snapshot", None) or {}
    if serve:
        latency = serve.get("latency", {})
        queue = serve.get("queue", {})
        # Sim-time SLOs: deterministic for a given (seed, load, config),
        # so the gate can hold them to exact-ish thresholds.
        record["serve"] = {
            "p50_latency": float(latency.get("p50") or 0.0),
            "p99_latency": float(latency.get("p99") or 0.0),
            "submitted": int(serve.get("submitted", 0)),
            "processed": int(serve.get("processed", 0)),
            "shed": int(serve.get("shed", 0)),
            "max_queue_depth": int(queue.get("max_depth", 0)),
        }
    return record


class RunHistory:
    """The durable, bounded RUNS.jsonl store under one directory."""

    def __init__(self, directory: Path, *, max_entries: int = 200):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.directory = Path(directory)
        self.max_entries = max_entries

    @property
    def path(self) -> Path:
        return self.directory / RUNS_NAME

    def load(self) -> List[Dict[str, Any]]:
        """Every record, oldest first; tolerates a torn trailing line."""
        if not self.path.is_file():
            return []
        records = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    # A torn tail (crash mid-append) loses that one
                    # record, never the ledger.
                    continue
        return records

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Append one record (assigning its sequence) and rotate.

        Returns the stored record. When the ledger would exceed
        ``max_entries`` the file is atomically rewritten keeping only
        the newest records — bounded growth, last-N retention.
        """
        records = self.load()
        sequence = (int(records[-1]["sequence"]) + 1) if records else 0
        record = dict(record, sequence=sequence)
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        if len(records) + 1 > self.max_entries:
            kept = (records + [record])[-self.max_entries:]
            tmp = self.path.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for kept_record in kept:
                    handle.write(json.dumps(kept_record, sort_keys=True,
                                            default=str) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        else:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        return record

    def latest(self) -> Optional[Dict[str, Any]]:
        records = self.load()
        return records[-1] if records else None


def previous_comparable(records: List[Dict[str, Any]],
                        current: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The newest earlier record sharing ``current``'s config digest."""
    sequence = current.get("sequence")
    digest = current.get("config_digest")
    best = None
    for record in records:
        if record is current or record.get("sequence") == sequence:
            continue
        if sequence is not None and record.get("sequence", -1) >= sequence:
            continue
        if record.get("config_digest") == digest:
            if best is None or record.get("sequence", -1) > best.get(
                    "sequence", -1):
                best = record
    return best


def _delta(current: Optional[float],
           previous: Optional[float]) -> Optional[str]:
    if current is None or previous is None:
        return None
    diff = current - previous
    return f"{diff:+,.4f}".rstrip("0").rstrip(".") or "+0"


def history_table(records: List[Dict[str, Any]]) -> Table:
    """One row per recorded run, with deltas vs the previous comparable.

    The delta columns compare wall seconds and charged calls against
    the newest earlier run with the same config digest; runs with no
    comparable predecessor render ``-``.
    """
    table = Table(
        title="Run history",
        columns=["Run", "Command", "Config", "Wall (s)", "Records",
                 "Rec/s", "Charged", "Cache hit", "Gaps",
                 "Δ wall (s)", "Δ charged"],
    )
    for record in records:
        previous = previous_comparable(records, record)
        counts = record.get("counts", {})
        wall = record.get("wall_seconds")
        records_n = counts.get("records", 0)
        rate = (records_n / wall) if wall and records_n else None
        charged = record.get("charged_total", 0)
        prev_charged = (previous.get("charged_total")
                        if previous is not None else None)
        table.add_row(
            record.get("sequence"),
            record.get("command", "-"),
            record.get("config_digest", "-"),
            round(wall, 4) if wall is not None else None,
            records_n,
            round(rate, 1) if rate is not None else None,
            charged,
            f"{record.get('cache', {}).get('hit_rate', 0.0):.1%}",
            counts.get("gaps", 0),
            _delta(wall, previous.get("wall_seconds")
                   if previous is not None else None),
            (f"{charged - prev_charged:+d}"
             if prev_charged is not None else None),
        )
    return table


def stage_trend_table(current: Dict[str, Any],
                      previous: Optional[Dict[str, Any]]) -> Table:
    """Per-stage hot-path attribution for one run, with trend deltas.

    Stages sort by self time (heaviest first); the delta column shows
    the cumulative-wall change vs the same stage in ``previous``.
    """
    title = f"Stage trends (run {current.get('sequence')}"
    if previous is not None:
        title += f" vs run {previous.get('sequence')})"
    else:
        title += ", no comparable baseline)"
    table = Table(
        title=title,
        columns=["Stage", "Count", "Self (s)", "Cum (s)", "p50 (ms)",
                 "p90 (ms)", "p99 (ms)", "Rec/s", "Δ cum (s)"],
    )
    stages = current.get("stages", {})
    baseline = previous.get("stages", {}) if previous is not None else {}

    def _ms(value: Optional[float]) -> Optional[float]:
        return None if value is None else round(value * 1000.0, 2)

    ordered = sorted(stages.items(),
                     key=lambda item: (-item[1].get("self", 0.0), item[0]))
    for name, stage in ordered:
        rate = stage.get("records_per_sec")
        prior = baseline.get(name, {})
        table.add_row(
            name,
            stage.get("count", 0),
            round(stage.get("self", 0.0), 4),
            round(stage.get("cum", 0.0), 4),
            _ms(stage.get("p50")),
            _ms(stage.get("p90")),
            _ms(stage.get("p99")),
            round(rate, 1) if rate is not None else None,
            _delta(stage.get("cum"), prior.get("cum")),
        )
    return table


def render_history(records: List[Dict[str, Any]]) -> str:
    """The full ``repro stats --history`` report."""
    if not records:
        return "run history is empty — record runs with --history-dir"
    parts = [history_table(records).to_text()]
    current = records[-1]
    parts.append(stage_trend_table(
        current, previous_comparable(records, current)).to_text())
    return "\n\n".join(parts)


# -- the regression gate ------------------------------------------------------


@dataclass(frozen=True)
class GateThresholds:
    """When does a run-over-baseline difference become a regression?

    A stage only counts as slower when it exceeds *both* the relative
    ``max_slowdown`` and the absolute ``min_wall_floor`` — sub-floor
    stages are noise at any ratio. Charged-call increases are exact
    (the simulators are deterministic, so any increase is a real
    behaviour change, not jitter).
    """

    #: Stage cumulative wall may grow at most this factor.
    max_slowdown: float = 1.50
    #: Ignore stages whose wall time never reaches this many seconds.
    min_wall_floor: float = 0.05
    #: Allowed growth in charged calls (per service and total).
    max_charged_increase: int = 0
    #: Allowed drop in enrichment-cache hit rate (absolute).
    max_hit_rate_drop: float = 0.05
    #: Serve p99 intake latency (sim seconds) may grow at most this
    #: factor vs baseline. Sim-time, so growth is real queueing-behaviour
    #: drift, not machine jitter; the factor only absorbs rounding.
    max_serve_p99_growth: float = 1.25
    #: Serve throughput (reports processed) may not drop below this
    #: fraction of baseline.
    min_serve_processed_ratio: float = 1.0
    #: Absolute end-to-end records/second floor. ``None`` disables the
    #: check; runs whose record carries no throughput (frozen tracer
    #: clock, zero records) are skipped rather than failed.
    min_records_per_sec: Optional[float] = None
    #: Absolute investigations/second floor for fleet runs. ``None``
    #: disables the check; runs whose record carries no fleet
    #: throughput (non-investigate commands, frozen tracer clock) are
    #: skipped rather than failed.
    min_investigations_per_sec: Optional[float] = None
    #: Max tolerated fraction of collected reports the sanitizer
    #: quarantined (``counts["quarantined"] / counts["reports"]``).
    #: ``None`` disables the check; records without a quarantine count
    #: (clean runs omit the key) pass at rate 0. Judged against the
    #: current run alone — hostile-input handling is an absolute
    #: property, not a baseline-relative one.
    max_quarantine_rate: Optional[float] = None


def compare_runs(current: Dict[str, Any], baseline: Dict[str, Any],
                 thresholds: Optional[GateThresholds] = None,
                 *, check_config: bool = True) -> List[str]:
    """Regression findings for ``current`` judged against ``baseline``.

    Returns human-readable findings, empty when the gate passes.
    """
    thresholds = thresholds or GateThresholds()
    findings: List[str] = []
    if check_config and (current.get("config_digest")
                         != baseline.get("config_digest")):
        findings.append(
            f"config drift: current digest "
            f"{current.get('config_digest')} != baseline "
            f"{baseline.get('config_digest')} (runs are not comparable; "
            f"re-baseline or pass --allow-config-drift)"
        )
        return findings

    base_stages = baseline.get("stages", {})
    for name, stage in sorted(current.get("stages", {}).items()):
        cum = float(stage.get("cum", 0.0))
        base = base_stages.get(name)
        if base is None:
            if cum >= thresholds.min_wall_floor:
                findings.append(
                    f"new stage {name}: {cum:.3f}s with no baseline entry")
            continue
        base_cum = float(base.get("cum", 0.0))
        if max(cum, base_cum) < thresholds.min_wall_floor:
            continue
        if base_cum > 0 and cum > base_cum * thresholds.max_slowdown:
            findings.append(
                f"stage {name} slowed {cum / base_cum:.2f}x: "
                f"{base_cum:.3f}s -> {cum:.3f}s "
                f"(threshold {thresholds.max_slowdown:.2f}x)"
            )

    base_charged = baseline.get("charged", {})
    for service, used in sorted(current.get("charged", {}).items()):
        base_used = int(base_charged.get(service, 0))
        if used > base_used + thresholds.max_charged_increase:
            findings.append(
                f"charged calls to {service} grew {base_used} -> {used} "
                f"(allowed increase {thresholds.max_charged_increase})"
            )
    current_total = int(current.get("charged_total", 0))
    base_total = int(baseline.get("charged_total", 0))
    if current_total > base_total + thresholds.max_charged_increase:
        findings.append(
            f"total charged calls grew {base_total} -> {current_total} "
            f"(allowed increase {thresholds.max_charged_increase})"
        )

    base_serve = baseline.get("serve")
    cur_serve = current.get("serve")
    if base_serve and cur_serve:
        base_p99 = float(base_serve.get("p99_latency", 0.0))
        cur_p99 = float(cur_serve.get("p99_latency", 0.0))
        if base_p99 > 0 and cur_p99 > base_p99 * thresholds.max_serve_p99_growth:
            findings.append(
                f"serve p99 intake latency grew {cur_p99 / base_p99:.2f}x: "
                f"{base_p99:.2f}s -> {cur_p99:.2f}s sim "
                f"(threshold {thresholds.max_serve_p99_growth:.2f}x)"
            )
        base_processed = int(base_serve.get("processed", 0))
        cur_processed = int(cur_serve.get("processed", 0))
        floor = base_processed * thresholds.min_serve_processed_ratio
        if base_processed > 0 and cur_processed < floor:
            findings.append(
                f"serve throughput dropped: processed "
                f"{base_processed} -> {cur_processed} reports "
                f"(floor {thresholds.min_serve_processed_ratio:.0%} "
                f"of baseline)"
            )

    if thresholds.min_records_per_sec is not None:
        throughput = current.get("records_per_sec")
        if (throughput is not None
                and float(throughput) < thresholds.min_records_per_sec):
            findings.append(
                f"throughput {float(throughput):,.1f} records/s fell below "
                f"the {thresholds.min_records_per_sec:,.1f} records/s floor"
            )

    if thresholds.min_investigations_per_sec is not None:
        throughput = current.get("investigations_per_sec")
        if (throughput is not None
                and float(throughput)
                < thresholds.min_investigations_per_sec):
            findings.append(
                f"fleet throughput {float(throughput):,.1f} "
                f"investigations/s fell below the "
                f"{thresholds.min_investigations_per_sec:,.1f} "
                f"investigations/s floor"
            )

    if thresholds.max_quarantine_rate is not None:
        counts = current.get("counts", {})
        quarantined = int(counts.get("quarantined", 0) or 0)
        denominator = int(counts.get("reports", 0)
                          or counts.get("accepted", 0) or 0)
        if quarantined and denominator:
            rate = quarantined / denominator
            if rate > thresholds.max_quarantine_rate:
                findings.append(
                    f"quarantine rate {rate:.1%} ({quarantined}/"
                    f"{denominator} reports) exceeds the "
                    f"{thresholds.max_quarantine_rate:.1%} ceiling"
                )

    base_rate = float(baseline.get("cache", {}).get("hit_rate", 0.0))
    current_rate = float(current.get("cache", {}).get("hit_rate", 0.0))
    if base_rate - current_rate > thresholds.max_hit_rate_drop:
        findings.append(
            f"cache hit rate dropped {base_rate:.1%} -> {current_rate:.1%} "
            f"(allowed drop {thresholds.max_hit_rate_drop:.1%})"
        )
    return findings
