#!/usr/bin/env python
"""Perf regression gate: judge a run against a pinned baseline.

Compares the newest record in a run-history directory (``--history-dir``,
written by ``repro ... --history-dir DIR``) — or an explicit record file
(``--current``) — against a baseline artifact, and exits non-zero when
the run regressed:

* a stage's cumulative wall time grew beyond ``--max-slowdown`` (and the
  ``--min-wall-floor`` absolute floor, so microsecond stages can't trip
  the ratio),
* charged service calls increased beyond ``--max-charged-increase``
  (default 0: the simulators are deterministic, any growth is a real
  behaviour change),
* the enrichment-cache hit rate dropped more than ``--max-hit-rate-drop``,
* the intake service's sim-time p99 latency grew beyond
  ``--max-serve-p99-growth`` or its processed-report throughput fell
  below ``--min-serve-processed-ratio`` of baseline (judged only when
  both records carry a ``serve`` block, i.e. came from ``repro serve``),
* the run's end-to-end throughput fell below the opt-in
  ``--min-records-per-sec`` absolute floor (skipped for records without
  a throughput figure, e.g. frozen-clock test runs),
* an investigation fleet's throughput fell below the opt-in
  ``--min-investigations-per-sec`` absolute floor (skipped for records
  without a fleet throughput figure, i.e. non-``investigate`` runs),
* the sanitizer quarantined more than the opt-in
  ``--max-quarantine-rate`` fraction of collected reports (an absolute
  ceiling on hostile-input leakage, judged on the current run alone),
* or the config digests differ (the runs aren't comparable; re-baseline
  or pass ``--allow-config-drift``).

Typical CI flow::

    python -m repro stats --quiet --history-dir perf/
    python scripts/perf_gate.py --history-dir perf/ --baseline perf/BASELINE.json
    # first run: pin the baseline instead of comparing
    python scripts/perf_gate.py --history-dir perf/ --baseline perf/BASELINE.json --update-baseline

Exit codes: 0 gate passed (or baseline written), 1 regression findings,
2 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.history import (  # noqa: E402
    GateThresholds,
    RunHistory,
    compare_runs,
)


def _load_record(path: Path) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"perf_gate: cannot read record {path}: {exc}")
    if not isinstance(record, dict):
        raise SystemExit(f"perf_gate: {path} is not a run record object")
    return record


def _current_record(args: argparse.Namespace) -> dict:
    if args.current is not None:
        return _load_record(args.current)
    latest = RunHistory(args.history_dir).latest()
    if latest is None:
        raise SystemExit(
            f"perf_gate: no run history under {args.history_dir}; "
            f"record one with `repro ... --history-dir {args.history_dir}`"
        )
    return latest


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_gate",
        description="fail CI when the latest run regressed vs a baseline",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--history-dir", type=Path,
                        help="run-history directory; the newest RUNS.jsonl "
                             "record is the run under judgement")
    source.add_argument("--current", type=Path,
                        help="explicit run-record JSON file to judge")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="baseline run-record JSON artifact")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the current record as the new baseline "
                             "and exit 0 (no comparison)")
    parser.add_argument("--max-slowdown", type=float, default=1.50,
                        help="max allowed per-stage wall-time growth factor "
                             "(default 1.50)")
    parser.add_argument("--min-wall-floor", type=float, default=0.05,
                        help="ignore stages under this many seconds "
                             "(default 0.05)")
    parser.add_argument("--max-charged-increase", type=int, default=0,
                        help="allowed growth in charged service calls "
                             "(default 0)")
    parser.add_argument("--max-hit-rate-drop", type=float, default=0.05,
                        help="allowed absolute cache hit-rate drop "
                             "(default 0.05)")
    parser.add_argument("--max-serve-p99-growth", type=float, default=1.25,
                        help="max allowed growth factor for the intake "
                             "service's p99 sim-time latency (default 1.25)")
    parser.add_argument("--min-serve-processed-ratio", type=float,
                        default=1.0,
                        help="serve throughput floor as a fraction of the "
                             "baseline's processed reports (default 1.0)")
    parser.add_argument("--min-records-per-sec", type=float, default=None,
                        help="absolute end-to-end records/second floor "
                             "(default off; skipped for records without "
                             "throughput, e.g. frozen-clock runs)")
    parser.add_argument("--min-investigations-per-sec", type=float,
                        default=None,
                        help="absolute investigations/second floor for "
                             "fleet runs (default off; skipped for "
                             "records without a fleet throughput figure)")
    parser.add_argument("--max-quarantine-rate", type=float, default=None,
                        help="max tolerated fraction of collected reports "
                             "the sanitizer quarantined (default off; "
                             "clean records without a quarantine count "
                             "pass at rate 0)")
    parser.add_argument("--allow-config-drift", action="store_true",
                        help="compare even when config digests differ")
    args = parser.parse_args(argv)

    current = _current_record(args)

    if args.update_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(current, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"perf_gate: baseline pinned to run "
              f"{current.get('sequence')} ({args.baseline})")
        return 0

    if not args.baseline.is_file():
        raise SystemExit(
            f"perf_gate: no baseline at {args.baseline}; pin one with "
            f"--update-baseline"
        )
    baseline = _load_record(args.baseline)

    thresholds = GateThresholds(
        max_slowdown=args.max_slowdown,
        min_wall_floor=args.min_wall_floor,
        max_charged_increase=args.max_charged_increase,
        max_hit_rate_drop=args.max_hit_rate_drop,
        max_serve_p99_growth=args.max_serve_p99_growth,
        min_serve_processed_ratio=args.min_serve_processed_ratio,
        min_records_per_sec=args.min_records_per_sec,
        min_investigations_per_sec=args.min_investigations_per_sec,
        max_quarantine_rate=args.max_quarantine_rate,
    )
    findings = compare_runs(current, baseline, thresholds,
                            check_config=not args.allow_config_drift)
    label = (f"run {current.get('sequence')} vs baseline run "
             f"{baseline.get('sequence')}")
    if findings:
        print(f"perf_gate: FAILED ({label}): "
              f"{len(findings)} regression finding(s)")
        for finding in findings:
            print(f"  - {finding}")
        return 1
    print(f"perf_gate: ok ({label}): no regressions "
          f"(wall {current.get('wall_seconds', 0.0):.3f}s, "
          f"charged {current.get('charged_total', 0)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
