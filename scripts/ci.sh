#!/usr/bin/env bash
# CI gate: tier-1 tests, a coverage gate, an observability smoke test,
# a chaos smoke test, a parallel-execution smoke test, a process-pool
# smoke test (a `--pool process --workers 4 --columnar` report diffed
# byte-for-byte against the serial run), a crash-resume smoke test, a
# Chrome trace-export smoke test, a perf-gate smoke test (which
# also enforces the records/second floor), a hostile-input smoke
# test (a `--hostile poison` run must quarantine with exact three-bucket
# accounting while the clean run quarantines nothing), and an
# investigation smoke test (a process-pool fleet's fingerprint must
# match the serial run's, a killed durable fleet must resume to the
# same fingerprint, and the perf gate's investigations/second floor
# must stay wired).
#
# Usage: scripts/ci.sh
# The coverage gate (scripts/coverage_gate.py) fails the build when
# repro coverage drops below its pinned threshold (pytest-cov when
# available, stdlib function-coverage tracer otherwise). The
# observability smoke test runs the full pipeline at the default
# scale with telemetry enabled and asserts the trace JSON carries spans
# for every forum and enrichment service. The chaos smoke test re-runs
# the pipeline under the `flaky` fault profile and asserts it exits 0
# with a non-empty enrichment-gap report. The parallel smoke test runs
# with --workers 4 and asserts a clean exit with a non-zero enrichment
# cache hit rate in the stats output. The crash-resume smoke test kills
# a checkpointed flaky run mid-enrichment (--crash-at), resumes it with
# `repro resume`, and diffs the resumed report against an uninterrupted
# run's — they must be byte-identical. The watch smoke test runs a
# 2-epoch incremental ingest (`repro watch`), crashes a second copy
# mid-epoch-2, resumes it from its stream directory, and compares the
# stream fingerprints — crash/resume must not change what was ingested.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q tests

echo "== coverage gate =="
python scripts/coverage_gate.py

echo "== observability smoke test =="
trace="$(mktemp -t repro-trace-XXXXXX.json)"
trap 'rm -f "$trace"' EXIT
python -m repro stats --seed 7 --quiet --trace-out "$trace" > /dev/null
python - "$trace" <<'PY'
import json, sys

trace = json.load(open(sys.argv[1]))
names = {span["name"] for span in trace["spans"]}
forums = {"collect/Twitter", "collect/Reddit", "collect/Smishing.eu",
          "collect/Pastebin", "collect/Smishtank"}
services = {"enrich/hlr", "enrich/whois", "enrich/crtsh",
            "enrich/spamhaus-pdns", "enrich/ipinfo", "enrich/virustotal",
            "enrich/gsb", "enrich/openai"}
missing = (forums | services) - names
assert not missing, f"missing spans: {sorted(missing)}"
counters = {c["name"] for c in trace["metrics"]["counters"]}
assert {"service.requests", "service.retries",
        "service.backoff_seconds"} <= counters, sorted(counters)
print(f"smoke ok: {len(trace['spans'])} spans, "
      f"{len(trace['metrics']['counters'])} counters")
PY

echo "== chaos smoke test (flaky fault profile) =="
chaos_out="$(mktemp -t repro-chaos-XXXXXX.txt)"
trap 'rm -f "$trace" "$chaos_out"' EXIT
python -m repro stats --seed 7 --quiet --faults flaky > "$chaos_out"
python - "$chaos_out" <<'PY'
import re, sys

out = open(sys.argv[1]).read()
header = re.search(r"gaps=(\d+)", out)
assert header, "stats header carries no gap count"
assert int(header.group(1)) > 0, "flaky profile produced zero gaps"
assert "Enrichment gaps:" in out, "missing per-service gap report"
assert "Resilience" in out, "missing retry/breaker table"
retries = re.search(r"faults=flaky", out)
assert retries, "stats header does not echo the fault profile"
print(f"chaos ok: {header.group(1)} gaps under the flaky profile")
PY

echo "== parallel smoke test (--workers 4) =="
par_out="$(mktemp -t repro-par-XXXXXX.txt)"
trap 'rm -f "$trace" "$chaos_out" "$par_out"' EXIT
python -m repro stats --seed 7 --quiet --workers 4 > "$par_out"
python - "$par_out" <<'PY'
import re, sys

out = open(sys.argv[1]).read()
assert "workers=4" in out, "stats header does not echo the worker count"
assert "cache=on" in out, "stats header does not echo the cache state"
assert "Cache" in out and "Hit rate" in out, "missing cache table"
total = re.search(r"\(total\)\s+([\d,]+)", out)
row = re.search(r"openai\s+([\d,]+)", out)
hits = int((total or row).group(1).replace(",", ""))
assert hits > 0, "parallel run recorded zero cache hits"
print(f"parallel ok: workers=4 run exited 0 with {hits} cache hits")
PY

echo "== process-pool smoke test (--pool process --workers 4 --columnar) =="
proc_report="$(mktemp -t repro-proc-XXXXXX.txt)"
serial_report="$(mktemp -t repro-serial-XXXXXX.txt)"
trap 'rm -f "$trace" "$chaos_out" "$par_out" "$proc_report" "$serial_report"' EXIT
python -m repro --seed 7 --campaigns 20 --quiet --workers 4 \
  --pool process --columnar report > "$proc_report"
python -m repro --seed 7 --campaigns 20 --quiet report > "$serial_report"
if ! diff -q "$proc_report" "$serial_report" > /dev/null; then
  echo "process-pool FAILED: --pool process --columnar report differs from serial run" >&2
  diff "$proc_report" "$serial_report" | head -20 >&2
  exit 1
fi
echo "process-pool ok: 4-worker columnar report byte-identical to serial run"

echo "== crash-resume smoke test (checkpoint journal) =="
ck_dir="$(mktemp -d -t repro-ck-XXXXXX)"
resumed_out="$(mktemp -t repro-resumed-XXXXXX.txt)"
full_out="$(mktemp -t repro-full-XXXXXX.txt)"
trap 'rm -rf "$trace" "$chaos_out" "$par_out" "$proc_report" "$serial_report" "$ck_dir" "$resumed_out" "$full_out"' EXIT
rmdir "$ck_dir"   # the CLI wants to create it empty itself
crash_rc=0
python -m repro --seed 7 --campaigns 40 --quiet --faults flaky \
  --checkpoint-dir "$ck_dir" --crash-at whois:5 report \
  > /dev/null 2>&1 || crash_rc=$?
if [ "$crash_rc" -ne 75 ]; then
  echo "crash-resume FAILED: expected exit 75 from the killed run, got $crash_rc" >&2
  exit 1
fi
python -m repro resume --checkpoint-dir "$ck_dir" --quiet > "$resumed_out"
python -m repro --seed 7 --campaigns 40 --quiet --faults flaky report > "$full_out"
if ! diff -q "$resumed_out" "$full_out" > /dev/null; then
  echo "crash-resume FAILED: resumed report differs from uninterrupted run" >&2
  diff "$resumed_out" "$full_out" | head -20 >&2
  exit 1
fi
echo "crash-resume ok: resumed report byte-identical to uninterrupted run"

echo "== watch smoke test (incremental ingestion) =="
clean_dir="$(mktemp -d -t repro-stream-clean-XXXXXX)"
crash_dir="$(mktemp -d -t repro-stream-crash-XXXXXX)"
watch_out="$(mktemp -t repro-watch-XXXXXX.txt)"
resume_stream_out="$(mktemp -t repro-watch-resumed-XXXXXX.txt)"
trap 'rm -rf "$trace" "$chaos_out" "$par_out" "$proc_report" "$serial_report" "$ck_dir" "$resumed_out" "$full_out" "$clean_dir" "$crash_dir" "$watch_out" "$resume_stream_out"' EXIT
rmdir "$clean_dir" "$crash_dir"   # the CLI wants to create them itself
python -m repro --seed 7 --campaigns 40 --quiet watch --epochs 2 \
  --stream-dir "$clean_dir" > "$watch_out"
grep -q "^stream fingerprint=" "$watch_out" || {
  echo "watch FAILED: no stream fingerprint in watch output" >&2; exit 1; }
grep -q "(ledger)" "$watch_out" || {
  echo "watch FAILED: no ledger row in the Stream table" >&2; exit 1; }
watch_rc=0
python -m repro --seed 7 --campaigns 40 --quiet --crash-at whois:5 \
  watch --epochs 2 --crash-epoch 1 --stream-dir "$crash_dir" \
  > /dev/null 2>&1 || watch_rc=$?
if [ "$watch_rc" -ne 75 ]; then
  echo "watch FAILED: expected exit 75 from the mid-epoch crash, got $watch_rc" >&2
  exit 1
fi
python -m repro --quiet resume --stream-dir "$crash_dir" > "$resume_stream_out"
clean_fp="$(grep "^stream fingerprint=" "$watch_out")"
resumed_fp="$(grep "^stream fingerprint=" "$resume_stream_out")"
if [ "$clean_fp" != "$resumed_fp" ]; then
  echo "watch FAILED: resumed stream fingerprint differs from clean run" >&2
  echo "  clean:   $clean_fp" >&2
  echo "  resumed: $resumed_fp" >&2
  exit 1
fi
echo "watch ok: crash/resume stream fingerprint matches the clean 2-epoch run"

echo "== serve smoke test (burst load + kill-and-resume) =="
serve_out="$(mktemp -t repro-serve-XXXXXX.txt)"
serve_dir="$(mktemp -d -t repro-serve-dir-XXXXXX)"
serve_resumed_out="$(mktemp -t repro-serve-resumed-XXXXXX.txt)"
trap 'rm -rf "$trace" "$chaos_out" "$par_out" "$proc_report" "$serial_report" "$ck_dir" "$resumed_out" "$full_out" "$clean_dir" "$crash_dir" "$watch_out" "$resume_stream_out" "$serve_out" "$serve_dir" "$serve_resumed_out"' EXIT
rmdir "$serve_dir"   # the CLI wants to create it itself
serve_args=(--seed 7 --campaigns 20 --quiet serve --load-profile burst
  --requests 10000 --reporters 2000 --queue-capacity 40)
python -m repro "${serve_args[@]}" > "$serve_out"
python - "$serve_out" <<'PY'
import re, sys

out = open(sys.argv[1]).read()
header = out.splitlines()[0]
submitted = int(re.search(r"submitted=(\d+)", header).group(1))
assert submitted >= 10_000, f"burst smoke submitted only {submitted}"
depth = re.search(r"queue depth max=(\d+)/(\d+)", out)
assert depth, "no queue-depth line in serve output"
assert int(depth.group(1)) <= int(depth.group(2)), \
    f"queue depth {depth.group(1)} exceeded bound {depth.group(2)}"
assert re.search(r"healthy\s+shedding", out), "service never shed load"
assert "mode=healthy" in header, "service did not recover to healthy"
latency = re.search(r"intake latency sim-seconds p50=([\d.]+) p99=([\d.]+)",
                    out)
assert latency, "no intake latency percentiles in serve output"
print(f"serve ok: {submitted} submitted, depth {depth.group(1)}/"
      f"{depth.group(2)}, shed and recovered, "
      f"p50/p99={latency.group(1)}/{latency.group(2)}s")
PY
serve_rc=0
python -m repro "${serve_args[@]}" --serve-dir "$serve_dir" \
  --kill-at 5000 > /dev/null 2>&1 || serve_rc=$?
if [ "$serve_rc" -ne 75 ]; then
  echo "serve FAILED: expected exit 75 from the killed run, got $serve_rc" >&2
  exit 1
fi
python -m repro --quiet serve --resume --serve-dir "$serve_dir" \
  > "$serve_resumed_out"
serve_fp="$(grep '^serve fingerprint=' "$serve_out")"
resumed_serve_fp="$(grep '^serve fingerprint=' "$serve_resumed_out")"
if [ -z "$serve_fp" ] || [ "$serve_fp" != "$resumed_serve_fp" ]; then
  echo "serve FAILED: resumed fingerprint differs from uninterrupted run" >&2
  echo "  clean:   $serve_fp" >&2
  echo "  resumed: $resumed_serve_fp" >&2
  exit 1
fi
if [ "$(head -n 1 "$serve_out")" != "$(head -n 1 "$serve_resumed_out")" ]; then
  echo "serve FAILED: resumed header counts differ from uninterrupted run" >&2
  diff <(head -n 1 "$serve_out") <(head -n 1 "$serve_resumed_out") >&2
  exit 1
fi
echo "serve ok: kill-and-resume fingerprint matches the uninterrupted run"

echo "== trace-export smoke test (--trace-format chrome) =="
chrome_trace="$(mktemp -t repro-chrome-XXXXXX.json)"
trap 'rm -rf "$trace" "$chaos_out" "$par_out" "$proc_report" "$serial_report" "$ck_dir" "$resumed_out" "$full_out" "$clean_dir" "$crash_dir" "$watch_out" "$resume_stream_out" "$serve_out" "$serve_dir" "$serve_resumed_out" "$chrome_trace"' EXIT
python -m repro stats --seed 7 --quiet \
  --trace-out "$chrome_trace" --trace-format chrome > /dev/null
python - "$chrome_trace" <<'PY'
import json, sys

doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "chrome trace carries no complete (ph=X) events"
required = {"name", "cat", "ph", "pid", "tid", "ts", "dur", "args"}
for event in spans:
    missing = required - set(event)
    assert not missing, f"event {event.get('name')} missing {sorted(missing)}"
    assert isinstance(event["ts"], (int, float)), "ts must be numeric (us)"
    assert isinstance(event["dur"], (int, float)), "dur must be numeric (us)"
names = {e["name"] for e in spans}
assert "pipeline" in names and "enrich" in names, sorted(names)
assert doc.get("displayTimeUnit") == "ms", "missing displayTimeUnit"
print(f"trace-export ok: {len(spans)} chrome events, fields validated")
PY

echo "== perf-gate smoke test (baseline pin + tampered baseline) =="
perf_dir="$(mktemp -d -t repro-perf-XXXXXX)"
trap 'rm -rf "$trace" "$chaos_out" "$par_out" "$proc_report" "$serial_report" "$ck_dir" "$resumed_out" "$full_out" "$clean_dir" "$crash_dir" "$watch_out" "$resume_stream_out" "$serve_out" "$serve_dir" "$serve_resumed_out" "$chrome_trace" "$perf_dir"' EXIT
python -m repro stats --seed 7 --quiet --history-dir "$perf_dir" > /dev/null
python scripts/perf_gate.py --history-dir "$perf_dir" \
  --baseline "$perf_dir/BASELINE.json" --update-baseline > /dev/null
python -m repro stats --seed 7 --quiet --history-dir "$perf_dir" > /dev/null
# The records/second floor: 1 rec/s is trivially clear on any machine —
# the point is the plumbing (record -> threshold -> finding) stays wired.
python scripts/perf_gate.py --history-dir "$perf_dir" \
  --baseline "$perf_dir/BASELINE.json" --max-slowdown 100.0 \
  --min-records-per-sec 1
floor_rc=0
python scripts/perf_gate.py --history-dir "$perf_dir" \
  --baseline "$perf_dir/BASELINE.json" --max-slowdown 100.0 \
  --min-records-per-sec 1000000000 > /dev/null || floor_rc=$?
if [ "$floor_rc" -ne 1 ]; then
  echo "perf-gate FAILED: impossible records/sec floor should exit 1, got $floor_rc" >&2
  exit 1
fi
python - "$perf_dir/BASELINE.json" <<'PY'
import json, sys

path = sys.argv[1]
baseline = json.load(open(path))
baseline["charged"] = {name: 0 for name in baseline["charged"]}
baseline["charged_total"] = 0
json.dump(baseline, open(path, "w"), sort_keys=True)
PY
gate_rc=0
python scripts/perf_gate.py --history-dir "$perf_dir" \
  --baseline "$perf_dir/BASELINE.json" --max-slowdown 100.0 \
  > /dev/null || gate_rc=$?
if [ "$gate_rc" -ne 1 ]; then
  echo "perf-gate FAILED: tampered baseline should exit 1, got $gate_rc" >&2
  exit 1
fi
echo "perf-gate ok: clean baseline passes, records/sec floor enforced, tampered baseline fails"

echo "== hostile-input smoke test (--hostile poison quarantine) =="
hostile_out="$(mktemp -t repro-hostile-XXXXXX.txt)"
hostile_clean_out="$(mktemp -t repro-hostile-clean-XXXXXX.txt)"
trap 'rm -rf "$trace" "$chaos_out" "$par_out" "$proc_report" "$serial_report" "$ck_dir" "$resumed_out" "$full_out" "$clean_dir" "$crash_dir" "$watch_out" "$resume_stream_out" "$serve_out" "$serve_dir" "$serve_resumed_out" "$chrome_trace" "$perf_dir" "$hostile_out" "$hostile_clean_out"' EXIT
python -m repro --seed 7 --campaigns 10 --quiet --hostile poison stats \
  > "$hostile_out"
python -m repro --seed 7 --campaigns 10 --quiet stats > "$hostile_clean_out"
python - "$hostile_out" "$hostile_clean_out" <<'PY'
import re, sys

hostile = open(sys.argv[1]).read()
clean = open(sys.argv[2]).read()
quarantined = re.search(r"quarantined=(\d+)", hostile)
assert quarantined and int(quarantined.group(1)) > 0, \
    "poison world quarantined nothing"
assert "hostile=poison" in hostile, "header does not echo the profile"
assert "Quarantine" in hostile, "missing Quarantine table"
assert "reporter_flood" in hostile, "flood reason missing from the table"
# The clean run must not know the quarantine layer exists.
assert "quarantined=" not in clean, "clean run reported quarantines"
assert "Quarantine" not in clean, "clean run rendered a Quarantine table"
# Clean-subset smoke: the curated record count is untouched by hostility.
records = lambda out: re.search(r" records=(\d+)", out).group(1)
assert records(hostile) == records(clean), \
    f"hostile run changed record count {records(hostile)} != {records(clean)}"
print(f"hostile smoke ok: {quarantined.group(1)} quarantined, "
      f"{records(clean)} records on both arms")
PY
python - <<'PY'
from repro.core.pipeline import run_pipeline
from repro.world.scenario import ScenarioConfig, build_world

run = run_pipeline(build_world(
    ScenarioConfig(seed=7, n_campaigns=10, hostile="poison")))
s = run.curation_stats
assert s.reports_in == len(run.collection.reports)
assert s.reports_curated + s.quarantined + s.reports_dropped == s.reports_in, (
    f"accounting broke: {s.reports_curated} + {s.quarantined} + "
    f"{s.reports_dropped} != {s.reports_in}")
assert len(s.quarantines) == s.quarantined
print(f"hostile accounting ok: {s.reports_curated} + {s.quarantined} + "
      f"{s.reports_dropped} == {s.reports_in}")
PY
echo "== investigate smoke test (fleet fingerprint + kill-and-resume) =="
invest_out="$(mktemp -t repro-invest-XXXXXX.txt)"
invest_proc_out="$(mktemp -t repro-invest-proc-XXXXXX.txt)"
invest_resumed_out="$(mktemp -t repro-invest-resumed-XXXXXX.txt)"
invest_dir="$(mktemp -d -t repro-invest-dir-XXXXXX)"
invest_perf="$(mktemp -d -t repro-invest-perf-XXXXXX)"
trap 'rm -rf "$trace" "$chaos_out" "$par_out" "$proc_report" "$serial_report" "$ck_dir" "$resumed_out" "$full_out" "$clean_dir" "$crash_dir" "$watch_out" "$resume_stream_out" "$serve_out" "$serve_dir" "$serve_resumed_out" "$chrome_trace" "$perf_dir" "$hostile_out" "$hostile_clean_out" "$invest_out" "$invest_proc_out" "$invest_resumed_out" "$invest_dir" "$invest_perf"' EXIT
rmdir "$invest_dir"   # the CLI wants to create it itself
invest_root=(--seed 7 --campaigns 30 --quiet)
invest_sub=(investigate --playbook full-funnel --sample 120)
python -m repro "${invest_root[@]}" --history-dir "$invest_perf" \
  "${invest_sub[@]}" > "$invest_out"
python - "$invest_out" <<'PY'
import re, sys

out = open(sys.argv[1]).read()
header = out.splitlines()[0]
assert "playbook=full-funnel" in header, "header does not echo the playbook"
investigated = int(re.search(r"investigated=(\d+)", header).group(1))
assert investigated > 0, "fleet investigated nothing"
scans = int(re.search(r"scans=(\d+)", header).group(1))
assert scans > 0, "fleet charged no scans — the smoke proves nothing"
assert "Investigations" in out, "missing Investigations table"
assert "Evidence packages" in out, "missing evidence accounting"
assert re.search(r"^investigate fingerprint=", out, re.M), \
    "no fleet fingerprint line"
print(f"investigate ok: {investigated} investigated, {scans} scans")
PY
python -m repro "${invest_root[@]}" --workers 4 --pool process \
  "${invest_sub[@]}" > "$invest_proc_out"
serial_invest_fp="$(grep '^investigate fingerprint=' "$invest_out")"
proc_invest_fp="$(grep '^investigate fingerprint=' "$invest_proc_out")"
if [ -z "$serial_invest_fp" ] || [ "$serial_invest_fp" != "$proc_invest_fp" ]; then
  echo "investigate FAILED: process-pool fingerprint differs from serial run" >&2
  echo "  serial:  $serial_invest_fp" >&2
  echo "  process: $proc_invest_fp" >&2
  exit 1
fi
invest_rc=0
python -m repro "${invest_root[@]}" "${invest_sub[@]}" \
  --invest-dir "$invest_dir" --kill-at 2 > /dev/null 2>&1 || invest_rc=$?
if [ "$invest_rc" -ne 75 ]; then
  echo "investigate FAILED: expected exit 75 from the killed fleet, got $invest_rc" >&2
  exit 1
fi
python -m repro --quiet investigate --resume --invest-dir "$invest_dir" \
  > "$invest_resumed_out"
resumed_invest_fp="$(grep '^investigate fingerprint=' "$invest_resumed_out")"
if [ "$serial_invest_fp" != "$resumed_invest_fp" ]; then
  echo "investigate FAILED: resumed fingerprint differs from uninterrupted run" >&2
  echo "  clean:   $serial_invest_fp" >&2
  echo "  resumed: $resumed_invest_fp" >&2
  exit 1
fi
if [ "$(head -n 1 "$invest_out")" != "$(head -n 1 "$invest_resumed_out")" ]; then
  echo "investigate FAILED: resumed header counts differ from uninterrupted run" >&2
  diff <(head -n 1 "$invest_out") <(head -n 1 "$invest_resumed_out") >&2
  exit 1
fi
python scripts/perf_gate.py --history-dir "$invest_perf" \
  --baseline "$invest_perf/BASELINE.json" --update-baseline > /dev/null
python -m repro "${invest_root[@]}" --history-dir "$invest_perf" \
  "${invest_sub[@]}" > /dev/null
# The investigations/second floor: like the records/sec leg, a tiny
# floor keeps the plumbing (record -> threshold -> finding) wired.
python scripts/perf_gate.py --history-dir "$invest_perf" \
  --baseline "$invest_perf/BASELINE.json" --max-slowdown 100.0 \
  --min-investigations-per-sec 0.000001 > /dev/null
invest_floor_rc=0
python scripts/perf_gate.py --history-dir "$invest_perf" \
  --baseline "$invest_perf/BASELINE.json" --max-slowdown 100.0 \
  --min-investigations-per-sec 1000000000 > /dev/null || invest_floor_rc=$?
if [ "$invest_floor_rc" -ne 1 ]; then
  echo "investigate FAILED: impossible investigations/sec floor should exit 1, got $invest_floor_rc" >&2
  exit 1
fi
echo "investigate ok: pool matrix + kill-and-resume fingerprints match, perf floor enforced"

echo "ci ok"
