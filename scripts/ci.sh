#!/usr/bin/env bash
# CI gate: tier-1 tests plus an observability smoke test.
#
# Usage: scripts/ci.sh
# The smoke test runs the full pipeline at the default scale with
# telemetry enabled and asserts the trace JSON carries spans for every
# forum and enrichment service.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q tests

echo "== observability smoke test =="
trace="$(mktemp -t repro-trace-XXXXXX.json)"
trap 'rm -f "$trace"' EXIT
python -m repro stats --seed 7 --quiet --trace-out "$trace" > /dev/null
python - "$trace" <<'PY'
import json, sys

trace = json.load(open(sys.argv[1]))
names = {span["name"] for span in trace["spans"]}
forums = {"collect/Twitter", "collect/Reddit", "collect/Smishing.eu",
          "collect/Pastebin", "collect/Smishtank"}
services = {"enrich/hlr", "enrich/whois", "enrich/crtsh",
            "enrich/spamhaus-pdns", "enrich/ipinfo", "enrich/virustotal",
            "enrich/gsb", "enrich/openai"}
missing = (forums | services) - names
assert not missing, f"missing spans: {sorted(missing)}"
counters = {c["name"] for c in trace["metrics"]["counters"]}
assert {"service.requests", "service.retries",
        "service.backoff_seconds"} <= counters, sorted(counters)
print(f"smoke ok: {len(trace['spans'])} spans, "
      f"{len(trace['metrics']['counters'])} counters")
PY
echo "ci ok"
