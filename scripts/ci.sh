#!/usr/bin/env bash
# CI gate: tier-1 tests, an observability smoke test, and a chaos smoke
# test.
#
# Usage: scripts/ci.sh
# The observability smoke test runs the full pipeline at the default
# scale with telemetry enabled and asserts the trace JSON carries spans
# for every forum and enrichment service. The chaos smoke test re-runs
# the pipeline under the `flaky` fault profile and asserts it exits 0
# with a non-empty enrichment-gap report.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q tests

echo "== observability smoke test =="
trace="$(mktemp -t repro-trace-XXXXXX.json)"
trap 'rm -f "$trace"' EXIT
python -m repro stats --seed 7 --quiet --trace-out "$trace" > /dev/null
python - "$trace" <<'PY'
import json, sys

trace = json.load(open(sys.argv[1]))
names = {span["name"] for span in trace["spans"]}
forums = {"collect/Twitter", "collect/Reddit", "collect/Smishing.eu",
          "collect/Pastebin", "collect/Smishtank"}
services = {"enrich/hlr", "enrich/whois", "enrich/crtsh",
            "enrich/spamhaus-pdns", "enrich/ipinfo", "enrich/virustotal",
            "enrich/gsb", "enrich/openai"}
missing = (forums | services) - names
assert not missing, f"missing spans: {sorted(missing)}"
counters = {c["name"] for c in trace["metrics"]["counters"]}
assert {"service.requests", "service.retries",
        "service.backoff_seconds"} <= counters, sorted(counters)
print(f"smoke ok: {len(trace['spans'])} spans, "
      f"{len(trace['metrics']['counters'])} counters")
PY

echo "== chaos smoke test (flaky fault profile) =="
chaos_out="$(mktemp -t repro-chaos-XXXXXX.txt)"
trap 'rm -f "$trace" "$chaos_out"' EXIT
python -m repro stats --seed 7 --quiet --faults flaky > "$chaos_out"
python - "$chaos_out" <<'PY'
import re, sys

out = open(sys.argv[1]).read()
header = re.search(r"gaps=(\d+)", out)
assert header, "stats header carries no gap count"
assert int(header.group(1)) > 0, "flaky profile produced zero gaps"
assert "Enrichment gaps:" in out, "missing per-service gap report"
assert "Resilience" in out, "missing retry/breaker table"
retries = re.search(r"faults=flaky", out)
assert retries, "stats header does not echo the fault profile"
print(f"chaos ok: {header.group(1)} gaps under the flaky profile")
PY
echo "ci ok"
