#!/usr/bin/env python
"""Coverage gate for CI: fail when ``repro`` coverage drops below a pin.

Preferred path: if ``pytest-cov`` is importable, delegate to
``pytest --cov=repro --cov-fail-under=<line threshold>`` over the full
tier-1 suite.

Fallback path (this container ships no coverage tooling and CI may not
install any): measure **function coverage** with a stdlib
``sys.settrace`` hook. The tracer records every ``call`` event whose
code object lives under ``src/repro`` while an in-process pytest run
exercises a fast, pipeline-spanning test subset; the denominator is
every code object (functions, methods, lambdas, comprehensions)
compiled from the package sources. Function coverage is coarser than
line coverage, so each mode carries its own pinned threshold —
measured at the time the pin was set, minus a small buffer for noise.

Run it the way CI does::

    PYTHONPATH=src python scripts/coverage_gate.py

``--report`` additionally prints the least-covered modules, which is
how to find dead spots when raising the pin.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import threading
import types
from pathlib import Path
from typing import Dict, Set, Tuple

REPO = Path(__file__).resolve().parents[1]
PACKAGE_ROOT = REPO / "src" / "repro"

# Function-coverage pin for the stdlib fallback. Measured 85.4% on the
# subset below when introduced; the buffer absorbs platform jitter
# (e.g. comprehension inlining differences across CPython versions).
FUNCTION_THRESHOLD = 80.0

# Line-coverage pin used only when pytest-cov is available.
LINE_THRESHOLD = 85

# Fast subset (~15 s untraced) that spans the whole pipeline: CLI
# end-to-end (golden stats), execution engine, enrichment, resilience,
# telemetry — plus unit files for subsystems the end-to-end path skips
# (detection, imaging, mitigation, SMS encoding, analysis quality).
TEST_SUBSET = [
    "tests/test_stats_golden.py",
    "tests/test_exec_engine.py",
    "tests/test_core_enrichment_pipeline.py",
    "tests/test_resilience.py",
    "tests/test_obs.py",
    "tests/test_cli.py",
    "tests/test_detect.py",
    "tests/test_imaging.py",
    "tests/test_mitigation_delivery.py",
    "tests/test_sms_gsm.py",
    "tests/test_analysis_quality.py",
]

FuncKey = Tuple[str, str, int]  # (abs filename, qualname-ish, firstlineno)


def defined_functions() -> Set[FuncKey]:
    """Every code object compiled from the package sources."""
    funcs: Set[FuncKey] = set()
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        filename = str(path)
        code = compile(path.read_text(encoding="utf-8"), filename, "exec")
        stack = [code]
        while stack:
            obj = stack.pop()
            for const in obj.co_consts:
                if isinstance(const, types.CodeType):
                    stack.append(const)
            if obj.co_name != "<module>":
                funcs.add((filename, obj.co_name, obj.co_firstlineno))
    return funcs


def run_subset_traced() -> Set[FuncKey]:
    """Run the test subset in-process, recording called repro functions."""
    import pytest

    prefix = str(PACKAGE_ROOT) + os.sep
    executed: Set[FuncKey] = set()

    def tracer(frame, event, arg):
        if event == "call":
            code = frame.f_code
            filename = code.co_filename
            if not os.path.isabs(filename):
                filename = os.path.abspath(filename)
            if filename.startswith(prefix):
                executed.add((filename, code.co_name, code.co_firstlineno))
        return None  # call events only: no per-line tracing overhead

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        rc = pytest.main(
            ["-q", "-p", "no:cacheprovider", *TEST_SUBSET]
        )
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if rc != 0:
        print(f"coverage gate: test subset failed (pytest exit {rc})",
              file=sys.stderr)
        sys.exit(rc)
    return executed


def report_gaps(defined: Set[FuncKey], executed: Set[FuncKey]) -> None:
    per_module: Dict[str, Tuple[int, int]] = {}
    for key in defined:
        rel = os.path.relpath(key[0], REPO)
        total, hit = per_module.get(rel, (0, 0))
        per_module[rel] = (total + 1, hit + (key in executed))
    rows = sorted(per_module.items(),
                  key=lambda kv: kv[1][1] / kv[1][0])
    print("\nLeast-covered modules (functions hit/total):")
    for rel, (total, hit) in rows[:15]:
        print(f"  {hit:4d}/{total:<4d} {hit / total:6.1%}  {rel}")


def run_with_pytest_cov() -> int:
    cmd = [
        sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
        f"--cov=repro", f"--cov-fail-under={LINE_THRESHOLD}", "tests",
    ]
    print("coverage gate: pytest-cov available; running", " ".join(cmd))
    return subprocess.call(cmd, cwd=REPO)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", action="store_true",
                        help="print least-covered modules")
    parser.add_argument("--threshold", type=float,
                        default=FUNCTION_THRESHOLD,
                        help="function-coverage %% pin for the fallback")
    args = parser.parse_args(argv)

    try:
        import pytest_cov  # noqa: F401
    except ImportError:
        pass
    else:
        return run_with_pytest_cov()

    defined = defined_functions()
    executed = run_subset_traced()
    covered = defined & executed
    pct = 100.0 * len(covered) / len(defined) if defined else 100.0
    print(f"\ncoverage gate (function coverage, stdlib tracer): "
          f"{len(covered)}/{len(defined)} = {pct:.1f}% "
          f"(threshold {args.threshold:.1f}%)")
    if args.report:
        report_gaps(defined, executed)
    if pct < args.threshold:
        print("coverage gate: FAIL — coverage dropped below the pin; "
              "add tests or consciously lower the pin in "
              "scripts/coverage_gate.py", file=sys.stderr)
        return 1
    print("coverage gate: OK")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO / "src"))
    raise SystemExit(main())
