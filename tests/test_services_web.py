"""Tests for crt.sh, passive DNS, ipinfo, shorteners, and the web host."""

import datetime as dt

import pytest

from repro.errors import NotFound
from repro.net.asn import AsRegistry
from repro.net.url import Url
from repro.services.crtsh import CrtShService
from repro.services.passivedns import IpInfoService, PassiveDnsService
from repro.services.shorteners import (
    KNOWN_SHORTENERS,
    ShortenerResolver,
    is_shortener_host,
    shortener_for_url,
)
from repro.services.webhost import WebHostService
from repro.types import DeviceProfile, ScamType
from repro.utils.rng import derive, stable_hash
from repro.world.infrastructure import (
    FUNNEL_PAGE_KINDS,
    InfrastructureBuilder,
    funnel_blueprint,
)

START = dt.date(2022, 6, 1)


@pytest.fixture(scope="module")
def infra():
    as_registry = AsRegistry()
    builder = InfrastructureBuilder(derive(41, "web-test"),
                                    as_registry=as_registry)
    assets = [
        builder.register_domain("c1", ScamType.BANKING, "TestBank", START)
        for _ in range(80)
    ]
    links = [builder.build_link(assets[i % len(assets)], ScamType.BANKING)
             for i in range(300)]
    return as_registry, builder, assets, links


class TestCrtSh:
    def test_certs_for_logged_host(self, infra):
        _, _, assets, _ = infra
        service = CrtShService(assets)
        host = next(a.fqdn for a in assets if a.certificates)
        certs = service.certificates_for(host)
        assert certs
        assert all(c.common_name.endswith(host.split(".", 1)[-1]) or
                   c.common_name == host for c in certs)

    def test_unlogged_host_empty(self, infra):
        _, _, assets, _ = infra
        service = CrtShService(assets)
        assert service.certificates_for("unknown.example.com") == []

    def test_summary_counts_by_issuer(self, infra):
        _, _, assets, _ = infra
        service = CrtShService(assets)
        host = next(a.fqdn for a in assets if a.certificates)
        summary = service.summary_for(host)
        assert summary.certificates == sum(summary.issuers.values())
        assert summary.top_issuer in summary.issuers

    def test_certs_sorted_by_date(self, infra):
        _, _, assets, _ = infra
        service = CrtShService(assets)
        host = next(a.fqdn for a in assets if len(a.certificates) > 2)
        certs = service.certificates_for(host)
        assert certs == sorted(certs, key=lambda c: (c.issued_at, c.serial))


class TestPassiveDns:
    def test_observed_domains_resolve(self, infra):
        _, _, assets, _ = infra
        service = PassiveDnsService(assets)
        observed = [a for a in assets if a.pdns_observed]
        for asset in observed:
            answer = service.query(asset.fqdn)
            assert answer.resolved
            assert set(answer.addresses) == set(asset.hosting.addresses)

    def test_unobserved_domains_empty(self, infra):
        _, _, assets, _ = infra
        service = PassiveDnsService(assets)
        unobserved = next(a for a in assets if not a.pdns_observed)
        assert not service.query(unobserved.fqdn).resolved

    def test_coverage_is_partial(self, infra):
        _, _, assets, _ = infra
        service = PassiveDnsService(assets)
        # Only a small minority of domains are observed (§4.6).
        assert len(service.observed_domains) < len(assets) * 0.5

    def test_batch_dedup(self, infra):
        _, _, assets, _ = infra
        service = PassiveDnsService(assets)
        answers = service.query_batch([assets[0].fqdn, assets[0].fqdn])
        assert len(answers) == 1


class TestIpInfo:
    def test_lookup_known_address(self, infra, rng):
        as_registry, _, _, _ = infra
        service = IpInfoService(as_registry)
        address = as_registry.allocate_address(63949, rng)
        record = service.lookup(address)
        assert record.asn == 63949
        assert record.organisation == "Akamai"
        assert record.country in ("US", "IN")

    def test_batch_dedup(self, infra, rng):
        as_registry, _, _, _ = infra
        service = IpInfoService(as_registry)
        address = as_registry.allocate_address(15169, rng)
        before = service.meter.used
        service.lookup_batch([address, address, address])
        assert service.meter.used == before + 1


class TestShorteners:
    def test_known_list_has_33_services(self):
        assert len(KNOWN_SHORTENERS) == 33  # the paper's manual list

    def test_is_shortener_host(self):
        assert is_shortener_host("bit.ly")
        assert is_shortener_host("IS.GD")
        assert not is_shortener_host("evil.com")

    def test_shortener_for_url(self):
        assert shortener_for_url(Url("https", "bit.ly", "/x")) == "bit.ly"
        assert shortener_for_url(Url("https", "evil.com", "/x")) is None

    def test_resolve_live_link(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        short = next(l for l in links if l.is_shortened)
        destination = resolver.resolve(short.url, START)
        assert destination.host == short.destination.fqdn

    def test_resolve_dead_link_raises(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        short = next(l for l in links if l.is_shortened)
        with pytest.raises(NotFound):
            resolver.resolve(short.url, START + dt.timedelta(days=400))

    def test_unknown_token_raises(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        with pytest.raises(NotFound):
            resolver.resolve(Url("https", "bit.ly", "/zzzzzzz"), START)

    def test_non_shortener_rejected(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        with pytest.raises(NotFound):
            resolver.resolve(Url("https", "evil.com", "/x"), START)

    def test_try_resolve_returns_none(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        assert resolver.try_resolve(Url("https", "bit.ly", "/zzzzzzz"),
                                    START) is None

    def test_lifetimes_mostly_short(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        short = [l for l in links if l.is_shortened]
        alive_much_later = 0
        for link in short:
            if resolver.try_resolve(link.url, START + dt.timedelta(days=15)):
                alive_much_later += 1
        assert alive_much_later < len(short) * 0.35


class TestWebHost:
    @pytest.fixture(scope="class")
    def webhost(self, infra):
        _, _, assets, _ = infra
        return WebHostService(assets)

    def _dropper(self, infra, webhost):
        _, _, assets, _ = infra
        for asset in assets:
            if asset.serves_apk and webhost.host_alive_on(asset.fqdn,
                                                          asset.created_at):
                return asset
        pytest.skip("no live dropper in this draw")

    def test_desktop_gets_phishing_page(self, infra, webhost):
        asset = self._dropper(infra, webhost)
        result = webhost.fetch(asset.landing_url, DeviceProfile.DESKTOP,
                               asset.created_at)
        assert result.content_kind == "phishing_page"

    def test_android_gets_apk(self, infra, webhost):
        asset = self._dropper(infra, webhost)
        result = webhost.fetch(asset.landing_url, DeviceProfile.ANDROID,
                               asset.created_at)
        assert result.is_apk_download
        assert result.apk is not None
        assert len(result.apk.sha256) == 64
        # The drive-by redirect appends the ?d=s1 marker (§6).
        assert result.chain.final.query == "d=s1"

    def test_dead_host_404(self, infra, webhost):
        _, _, assets, _ = infra
        asset = assets[0]
        result = webhost.fetch(asset.landing_url, DeviceProfile.DESKTOP,
                               asset.created_at + dt.timedelta(days=300))
        assert result.status == 404
        assert result.content_kind == "dead"

    def test_unknown_host_404(self, webhost):
        result = webhost.fetch(Url("https", "unknown.example.com", "/"),
                               DeviceProfile.DESKTOP, START)
        assert result.status == 404

    def test_apk_ground_truth_shape(self, webhost):
        truth = webhost.apk_ground_truth()
        for sha, family in truth.items():
            assert len(sha) == 64
            assert family in ("SMSspy", "HQWar", "Rewardsteal", "Artemis")

    def test_takedown_window_boundaries(self, infra, webhost):
        _, _, assets, _ = infra
        asset = assets[0]
        lifetime = stable_hash("host-life:" + asset.fqdn) % 45
        takedown = asset.created_at + dt.timedelta(days=lifetime)
        before = asset.created_at - dt.timedelta(days=1)
        assert not webhost.host_alive_on(asset.fqdn, before)
        assert webhost.host_alive_on(asset.fqdn, asset.created_at)
        assert webhost.host_alive_on(asset.fqdn, takedown)
        assert not webhost.host_alive_on(asset.fqdn,
                                         takedown + dt.timedelta(days=1))

    def test_unknown_host_never_alive(self, webhost):
        assert not webhost.host_alive_on("unknown.example.com", START)

    def test_non_dropper_serves_page_to_both_devices(self, infra, webhost):
        _, _, assets, _ = infra
        asset = next(a for a in assets
                     if not a.serves_apk
                     and webhost.host_alive_on(a.fqdn, a.created_at))
        for device in (DeviceProfile.DESKTOP, DeviceProfile.ANDROID):
            result = webhost.fetch(asset.landing_url, device,
                                   asset.created_at)
            assert result.content_kind == "phishing_page"
            assert result.apk is None

    def test_direct_apk_path_on_non_dropper_is_a_page(self, infra,
                                                      webhost):
        # Asking a plain phishing host for s1.apk must not conjure a
        # payload out of nowhere — there is no APK behind that host.
        _, _, assets, _ = infra
        asset = next(a for a in assets
                     if not a.serves_apk
                     and webhost.host_alive_on(a.fqdn, a.created_at))
        url = asset.landing_url.with_path("/s1.apk")
        result = webhost.fetch(url, DeviceProfile.DESKTOP,
                               asset.created_at)
        assert result.content_kind == "phishing_page"
        assert result.apk is None

    def test_dead_dropper_serves_nothing_to_android(self, infra, webhost):
        _, _, assets, _ = infra
        asset = next(a for a in assets if a.serves_apk)
        later = asset.created_at + dt.timedelta(days=300)
        for url in (asset.landing_url,
                    asset.landing_url.with_path("/s1.apk")):
            result = webhost.fetch(url, DeviceProfile.ANDROID, later)
            assert result.status == 404
            assert result.content_kind == "dead"
            assert result.apk is None

    def test_smsspy_dominates(self, infra):
        # Over a large pool of droppers the family mix favours SMSspy
        # (Table 19: 15 of 18 samples).
        as_registry = AsRegistry()
        builder = InfrastructureBuilder(derive(43, "apk-mix"),
                                        as_registry=as_registry,
                                        apk_fraction=1.0)
        assets = [
            builder.register_domain("c", ScamType.BANKING, None, START,
                                    serves_apk=True)
            for _ in range(120)
        ]
        webhost = WebHostService(assets)
        families = [a.family for a in webhost.apk_payloads()]
        assert families.count("SMSspy") > len(families) * 0.6


class TestFunnels:
    @pytest.fixture(scope="class")
    def webhost(self, infra):
        _, _, assets, _ = infra
        return WebHostService(assets)

    def _deep_asset(self, infra, webhost, *, gate=None, min_depth=2):
        """A live host whose kit deploys at least ``min_depth`` pages."""
        _, _, assets, _ = infra
        for asset in assets:
            depth, asset_gate = funnel_blueprint(asset.fqdn)
            if depth < min_depth:
                continue
            if gate is not None and asset_gate != gate:
                continue
            if webhost.host_alive_on(asset.fqdn, asset.created_at):
                return asset
        pytest.skip("no matching funnel host in this draw")

    def _gate_device(self, fqdn):
        _, gate = funnel_blueprint(fqdn)
        return (DeviceProfile.DESKTOP if gate == "desktop"
                else DeviceProfile.ANDROID)

    def test_depth_bounds_and_blueprint_agreement(self, infra, webhost):
        _, _, assets, _ = infra
        for asset in assets:
            depth = webhost.funnel_depth(asset.fqdn)
            assert 1 <= depth <= len(FUNNEL_PAGE_KINDS)
            assert (depth, webhost.funnel_gate(asset.fqdn)) == \
                funnel_blueprint(asset.fqdn)
        assert webhost.funnel_depth("unknown.example.com") == 0

    def test_pages_are_structural(self, infra, webhost):
        asset = self._deep_asset(infra, webhost, min_depth=3)
        landing = webhost.funnel_page(asset.fqdn, 0)
        assert landing.kind == "landing"
        assert not landing.has_form
        assert landing.url == asset.landing_url
        credential = webhost.funnel_page(asset.fqdn, 1)
        assert credential.kind == "credential_form"
        assert credential.url.path == "/verify"
        assert "password" in credential.form_fields
        payment = webhost.funnel_page(asset.fqdn, 2)
        assert payment.kind == "payment_otp"
        assert payment.url.path == "/confirm"
        assert "otp_code" in payment.form_fields
        assert webhost.funnel_page(asset.fqdn, 3) is None
        assert webhost.funnel_page(asset.fqdn, -1) is None
        assert webhost.funnel_page("unknown.example.com", 0) is None

    def test_landing_has_no_form_to_submit(self, infra, webhost):
        asset = self._deep_asset(infra, webhost)
        with pytest.raises(NotFound):
            webhost.submit_form(asset.fqdn, 0, {},
                                DeviceProfile.ANDROID, asset.created_at)

    def test_dead_host_rejects_submissions(self, infra, webhost):
        asset = self._deep_asset(infra, webhost)
        later = asset.created_at + dt.timedelta(days=300)
        submission = webhost.submit_form(
            asset.fqdn, 1, {"username": "x"},
            self._gate_device(asset.fqdn), later)
        assert not submission.accepted
        assert submission.next_page is None

    def test_device_gate_enforced(self, infra, webhost):
        asset = self._deep_asset(infra, webhost, gate="android")
        rejected = webhost.submit_form(
            asset.fqdn, 1, {"username": "x"},
            DeviceProfile.DESKTOP, asset.created_at)
        assert not rejected.accepted
        accepted = webhost.submit_form(
            asset.fqdn, 1, {"username": "x"},
            DeviceProfile.ANDROID, asset.created_at)
        assert accepted.accepted

    def test_submissions_chain_to_completion(self, infra, webhost):
        asset = self._deep_asset(infra, webhost)
        depth = webhost.funnel_depth(asset.fqdn)
        device = self._gate_device(asset.fqdn)
        for index in range(1, depth):
            page = webhost.funnel_page(asset.fqdn, index)
            submission = webhost.submit_form(
                asset.fqdn, index,
                {name: "synthetic" for name in page.form_fields},
                device, asset.created_at)
            assert submission.accepted
            assert submission.page_kind == page.kind
            assert submission.fields == tuple(sorted(page.form_fields))
            if index < depth - 1:
                assert submission.next_page is not None
                assert submission.next_page.kind == \
                    FUNNEL_PAGE_KINDS[index + 1]
            else:
                assert submission.funnel_complete
