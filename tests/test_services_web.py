"""Tests for crt.sh, passive DNS, ipinfo, shorteners, and the web host."""

import datetime as dt

import pytest

from repro.errors import NotFound
from repro.net.asn import AsRegistry
from repro.net.url import Url
from repro.services.crtsh import CrtShService
from repro.services.passivedns import IpInfoService, PassiveDnsService
from repro.services.shorteners import (
    KNOWN_SHORTENERS,
    ShortenerResolver,
    is_shortener_host,
    shortener_for_url,
)
from repro.services.webhost import WebHostService
from repro.types import DeviceProfile, ScamType
from repro.utils.rng import derive
from repro.world.infrastructure import InfrastructureBuilder

START = dt.date(2022, 6, 1)


@pytest.fixture(scope="module")
def infra():
    as_registry = AsRegistry()
    builder = InfrastructureBuilder(derive(41, "web-test"),
                                    as_registry=as_registry)
    assets = [
        builder.register_domain("c1", ScamType.BANKING, "TestBank", START)
        for _ in range(80)
    ]
    links = [builder.build_link(assets[i % len(assets)], ScamType.BANKING)
             for i in range(300)]
    return as_registry, builder, assets, links


class TestCrtSh:
    def test_certs_for_logged_host(self, infra):
        _, _, assets, _ = infra
        service = CrtShService(assets)
        host = next(a.fqdn for a in assets if a.certificates)
        certs = service.certificates_for(host)
        assert certs
        assert all(c.common_name.endswith(host.split(".", 1)[-1]) or
                   c.common_name == host for c in certs)

    def test_unlogged_host_empty(self, infra):
        _, _, assets, _ = infra
        service = CrtShService(assets)
        assert service.certificates_for("unknown.example.com") == []

    def test_summary_counts_by_issuer(self, infra):
        _, _, assets, _ = infra
        service = CrtShService(assets)
        host = next(a.fqdn for a in assets if a.certificates)
        summary = service.summary_for(host)
        assert summary.certificates == sum(summary.issuers.values())
        assert summary.top_issuer in summary.issuers

    def test_certs_sorted_by_date(self, infra):
        _, _, assets, _ = infra
        service = CrtShService(assets)
        host = next(a.fqdn for a in assets if len(a.certificates) > 2)
        certs = service.certificates_for(host)
        assert certs == sorted(certs, key=lambda c: (c.issued_at, c.serial))


class TestPassiveDns:
    def test_observed_domains_resolve(self, infra):
        _, _, assets, _ = infra
        service = PassiveDnsService(assets)
        observed = [a for a in assets if a.pdns_observed]
        for asset in observed:
            answer = service.query(asset.fqdn)
            assert answer.resolved
            assert set(answer.addresses) == set(asset.hosting.addresses)

    def test_unobserved_domains_empty(self, infra):
        _, _, assets, _ = infra
        service = PassiveDnsService(assets)
        unobserved = next(a for a in assets if not a.pdns_observed)
        assert not service.query(unobserved.fqdn).resolved

    def test_coverage_is_partial(self, infra):
        _, _, assets, _ = infra
        service = PassiveDnsService(assets)
        # Only a small minority of domains are observed (§4.6).
        assert len(service.observed_domains) < len(assets) * 0.5

    def test_batch_dedup(self, infra):
        _, _, assets, _ = infra
        service = PassiveDnsService(assets)
        answers = service.query_batch([assets[0].fqdn, assets[0].fqdn])
        assert len(answers) == 1


class TestIpInfo:
    def test_lookup_known_address(self, infra, rng):
        as_registry, _, _, _ = infra
        service = IpInfoService(as_registry)
        address = as_registry.allocate_address(63949, rng)
        record = service.lookup(address)
        assert record.asn == 63949
        assert record.organisation == "Akamai"
        assert record.country in ("US", "IN")

    def test_batch_dedup(self, infra, rng):
        as_registry, _, _, _ = infra
        service = IpInfoService(as_registry)
        address = as_registry.allocate_address(15169, rng)
        before = service.meter.used
        service.lookup_batch([address, address, address])
        assert service.meter.used == before + 1


class TestShorteners:
    def test_known_list_has_33_services(self):
        assert len(KNOWN_SHORTENERS) == 33  # the paper's manual list

    def test_is_shortener_host(self):
        assert is_shortener_host("bit.ly")
        assert is_shortener_host("IS.GD")
        assert not is_shortener_host("evil.com")

    def test_shortener_for_url(self):
        assert shortener_for_url(Url("https", "bit.ly", "/x")) == "bit.ly"
        assert shortener_for_url(Url("https", "evil.com", "/x")) is None

    def test_resolve_live_link(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        short = next(l for l in links if l.is_shortened)
        destination = resolver.resolve(short.url, START)
        assert destination.host == short.destination.fqdn

    def test_resolve_dead_link_raises(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        short = next(l for l in links if l.is_shortened)
        with pytest.raises(NotFound):
            resolver.resolve(short.url, START + dt.timedelta(days=400))

    def test_unknown_token_raises(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        with pytest.raises(NotFound):
            resolver.resolve(Url("https", "bit.ly", "/zzzzzzz"), START)

    def test_non_shortener_rejected(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        with pytest.raises(NotFound):
            resolver.resolve(Url("https", "evil.com", "/x"), START)

    def test_try_resolve_returns_none(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        assert resolver.try_resolve(Url("https", "bit.ly", "/zzzzzzz"),
                                    START) is None

    def test_lifetimes_mostly_short(self, infra):
        _, _, _, links = infra
        resolver = ShortenerResolver(links)
        short = [l for l in links if l.is_shortened]
        alive_much_later = 0
        for link in short:
            if resolver.try_resolve(link.url, START + dt.timedelta(days=15)):
                alive_much_later += 1
        assert alive_much_later < len(short) * 0.35


class TestWebHost:
    @pytest.fixture(scope="class")
    def webhost(self, infra):
        _, _, assets, _ = infra
        return WebHostService(assets)

    def _dropper(self, infra, webhost):
        _, _, assets, _ = infra
        for asset in assets:
            if asset.serves_apk and webhost.host_alive_on(asset.fqdn,
                                                          asset.created_at):
                return asset
        pytest.skip("no live dropper in this draw")

    def test_desktop_gets_phishing_page(self, infra, webhost):
        asset = self._dropper(infra, webhost)
        result = webhost.fetch(asset.landing_url, DeviceProfile.DESKTOP,
                               asset.created_at)
        assert result.content_kind == "phishing_page"

    def test_android_gets_apk(self, infra, webhost):
        asset = self._dropper(infra, webhost)
        result = webhost.fetch(asset.landing_url, DeviceProfile.ANDROID,
                               asset.created_at)
        assert result.is_apk_download
        assert result.apk is not None
        assert len(result.apk.sha256) == 64
        # The drive-by redirect appends the ?d=s1 marker (§6).
        assert result.chain.final.query == "d=s1"

    def test_dead_host_404(self, infra, webhost):
        _, _, assets, _ = infra
        asset = assets[0]
        result = webhost.fetch(asset.landing_url, DeviceProfile.DESKTOP,
                               asset.created_at + dt.timedelta(days=300))
        assert result.status == 404
        assert result.content_kind == "dead"

    def test_unknown_host_404(self, webhost):
        result = webhost.fetch(Url("https", "unknown.example.com", "/"),
                               DeviceProfile.DESKTOP, START)
        assert result.status == 404

    def test_apk_ground_truth_shape(self, webhost):
        truth = webhost.apk_ground_truth()
        for sha, family in truth.items():
            assert len(sha) == 64
            assert family in ("SMSspy", "HQWar", "Rewardsteal", "Artemis")

    def test_smsspy_dominates(self, infra):
        # Over a large pool of droppers the family mix favours SMSspy
        # (Table 19: 15 of 18 samples).
        as_registry = AsRegistry()
        builder = InfrastructureBuilder(derive(43, "apk-mix"),
                                        as_registry=as_registry,
                                        apk_fraction=1.0)
        assets = [
            builder.register_domain("c", ScamType.BANKING, None, START,
                                    serves_apk=True)
            for _ in range(120)
        ]
        webhost = WebHostService(assets)
        families = [a.family for a in webhost.apk_payloads()]
        assert families.count("SMSspy") > len(families) * 0.6
