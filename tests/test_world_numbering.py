"""Tests for phone-number issuance and the HLR ledger."""

import pytest

from repro.types import LineStatus, PhoneNumberType
from repro.utils.rng import derive
from repro.world.geography import default_countries
from repro.world.mno import default_operators
from repro.world.numbering import (
    NumberFactory,
    NumberLedger,
    SENDER_TYPE_WEIGHTS,
)


@pytest.fixture()
def factory(rng):
    return NumberFactory(rng)


@pytest.fixture(scope="module")
def countries():
    return default_countries()


@pytest.fixture(scope="module")
def operators():
    return default_operators()


class TestMobileIssuance:
    def test_number_matches_plan(self, factory, countries, operators):
        country = countries.get("GBR")
        operator = operators.get("EE Limited")
        issued = factory.mobile_number(country, operator)
        national = issued.digits[len(country.dial_code):]
        assert len(national) == country.national_length
        assert any(national.startswith(p) for p in country.mobile_prefixes)

    def test_ledger_registration(self, factory, countries, operators):
        issued = factory.mobile_number(countries.get("IND"),
                                       operators.get("AirTel"))
        assert factory.ledger.lookup(issued.digits) is issued

    def test_numbers_unique(self, factory, countries, operators):
        country = countries.get("NLD")
        operator = operators.get("KPN Mobile")
        numbers = {factory.mobile_number(country, operator).e164
                   for _ in range(200)}
        assert len(numbers) == 200

    def test_original_operator_recorded(self, factory, countries, operators):
        issued = factory.mobile_number(countries.get("FRA"),
                                       operators.get("SFR"))
        assert issued.original_operator == "SFR"

    def test_recycling_changes_current_not_original(self, countries, operators):
        factory = NumberFactory(derive(99, "recycle"))
        issued = [
            factory.mobile_number(countries.get("NLD"),
                                  operators.get("KPN Mobile"))
            for _ in range(300)
        ]
        recycled = [n for n in issued if n.current_operator != "KPN Mobile"]
        assert recycled  # ~15% should have ported
        assert all(n.original_operator == "KPN Mobile" for n in issued)


class TestSpecialNumbers:
    def test_landline_not_valid_sender(self, factory, countries):
        issued = factory.landline_number(countries.get("GBR"))
        assert issued.number_type is PhoneNumberType.LANDLINE
        assert not issued.number_type.is_valid

    def test_bad_format_longer_than_plan(self, factory, countries):
        country = countries.get("ESP")
        issued = factory.bad_format_number(country)
        national = issued.digits[len(country.dial_code):]
        assert len(national) > country.national_length
        assert issued.status is LineStatus.DEAD

    def test_service_number_types(self, factory, countries):
        for number_type in (PhoneNumberType.VOIP, PhoneNumberType.TOLL_FREE,
                            PhoneNumberType.PAGER):
            issued = factory.service_number(countries.get("USA"), number_type)
            assert issued.number_type is number_type


class TestSenderMix:
    def test_weights_cover_table3(self):
        assert set(SENDER_TYPE_WEIGHTS) == set(PhoneNumberType)

    def test_sender_number_distribution(self, countries, operators):
        factory = NumberFactory(derive(5, "mix"))
        country = countries.get("IND")
        operator = operators.get("AirTel")
        counts = {}
        for _ in range(1200):
            issued = factory.sender_number(country, operator)
            counts[issued.number_type] = counts.get(issued.number_type, 0) + 1
        total = sum(counts.values())
        # Mobile should dominate (~67%), bad format second (~24%).
        assert counts[PhoneNumberType.MOBILE] / total > 0.55
        assert counts[PhoneNumberType.BAD_FORMAT] / total > 0.15
        assert counts[PhoneNumberType.MOBILE] > counts[PhoneNumberType.BAD_FORMAT]


class TestLedger:
    def test_lookup_unknown_returns_none(self):
        assert NumberLedger().lookup("123456789") is None

    def test_len_and_iter(self, factory, countries, operators):
        before = len(factory.ledger)
        factory.mobile_number(countries.get("DEU"),
                              operators.get("Deutsche Telekom"))
        assert len(factory.ledger) == before + 1
        assert any(True for _ in factory.ledger)

    def test_lookup_strips_plus(self, factory, countries, operators):
        issued = factory.mobile_number(countries.get("DEU"),
                                       operators.get("Deutsche Telekom"))
        assert factory.ledger.lookup("+" + issued.digits) is issued
