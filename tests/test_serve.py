"""Unit + load-smoke tests for repro.serve: the overload-safe intake
service.

Covers the admission layer (token buckets, structured rejections), the
bounded queue, the degradation controller's mode machine, the load
generator's determinism, and one end-to-end burst smoke: 10k simulated
reports against a small queue must shed at the watermark, never exceed
the bound, recover to ``healthy``, and populate the latency digests.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Telemetry
from repro.serve import (
    FRONT_DOOR_REASONS,
    AdmissionController,
    AdmissionPolicy,
    BoundedQueue,
    DegradationController,
    IntakeService,
    LoadSpec,
    QueueItem,
    Request,
    ReporterBucket,
    ServeConfig,
    ServeMode,
    generate_schedule,
    run_to_completion,
)
from repro.services.base import ServiceMeter, SimClock
from repro.resilience import CircuitBreaker
from repro.world.scenario import ScenarioConfig

SCENARIO = ScenarioConfig(seed=7726, n_campaigns=20)


def _item(index, *, enqueued_at=0.0, deadline=None, reporter="rep-00000"):
    return QueueItem(index=index, request_id=f"q{index:07d}",
                     reporter=reporter, post_index=index,
                     enqueued_at=enqueued_at, deadline=deadline)


class TestReporterBucket:
    def test_burst_then_refill(self):
        bucket = ReporterBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst spent
        assert bucket.try_take(1.0)      # one token back after 1s

    def test_retry_after_names_the_refill_instant(self):
        bucket = ReporterBucket(rate=0.5, burst=1.0, now=0.0)
        assert bucket.try_take(0.0)
        hint = bucket.retry_after(0.0)
        assert hint == pytest.approx(2.0)  # 1 token / 0.5 per s
        assert bucket.try_take(hint)

    def test_state_roundtrip(self):
        bucket = ReporterBucket(rate=1.0, burst=3.0, now=0.0)
        bucket.try_take(0.5)
        state = bucket.state_dict()
        clone = ReporterBucket(rate=1.0, burst=3.0,
                               now=state["refilled_at"],
                               tokens=state["tokens"])
        assert clone.state_dict() == state


class TestAdmissionController:
    def test_rate_limit_rejections_are_structured(self):
        clock = SimClock()
        control = AdmissionController(
            AdmissionPolicy(reporter_rate=1.0, reporter_burst=1.0), clock)
        assert control.admit_reporter("rep-1") is None
        control.record_accept()
        hint = control.admit_reporter("rep-1")
        assert hint is not None and hint > 0
        control.reject("q1", "rep-1", "rate_limited", "over budget",
                       mode="healthy", retry_after=hint)
        rejection = control.rejections[-1]
        assert rejection.reason == "rate_limited"
        assert rejection.retry_after == pytest.approx(hint, abs=1e-3)
        assert control.rejected_by_reason["rate_limited"] == 1
        assert control.accepted == 1

    def test_state_roundtrip_preserves_buckets_and_counts(self):
        clock = SimClock()
        control = AdmissionController(AdmissionPolicy(), clock)
        control.admit_reporter("rep-1")
        control.record_accept()
        control.reject("q1", "rep-2", "queue_full", "full", mode="healthy")
        state = control.state_dict()
        clone = AdmissionController(AdmissionPolicy(), clock)
        clone.restore_state(state)
        assert clone.accepted == 1
        assert clone.rejected_by_reason == {"queue_full": 1}
        assert clone.state_dict() == state


class TestBoundedQueue:
    def test_never_exceeds_capacity(self):
        queue = BoundedQueue(3)
        accepted = [queue.offer(_item(i)) for i in range(5)]
        assert accepted == [True, True, True, False, False]
        assert queue.depth == 3
        assert queue.max_depth == 3
        assert queue.refused == 2

    def test_fifo_order(self):
        queue = BoundedQueue(8)
        for i in range(5):
            queue.offer(_item(i))
        taken = queue.take(3)
        assert [item.index for item in taken] == [0, 1, 2]
        assert queue.depth == 2

    def test_state_roundtrip(self):
        queue = BoundedQueue(4)
        queue.offer(_item(0, deadline=12.5))
        queue.offer(_item(1))
        queue.take(1)
        state = queue.state_dict()
        clone = BoundedQueue(4)
        clone.restore_state(state)
        assert clone.state_dict() == state
        assert [item.index for item in clone.items()] == [1]


class TestDegradationController:
    def _controller(self, clock, breakers=None, meters=None):
        return DegradationController(clock, high_watermark=8,
                                     low_watermark=4,
                                     breakers=breakers or {},
                                     meters=meters or {})

    def test_shed_latches_until_low_watermark(self):
        clock = SimClock()
        ctrl = self._controller(clock)
        assert ctrl.refresh(7) is ServeMode.HEALTHY
        assert ctrl.refresh(8) is ServeMode.SHEDDING
        # Above the low watermark the latch holds even as depth falls.
        assert ctrl.refresh(5) is ServeMode.SHEDDING
        assert ctrl.refresh(4) is ServeMode.HEALTHY

    def test_open_breaker_degrades(self):
        clock = SimClock()
        breaker = CircuitBreaker("whois", clock, failure_threshold=1,
                                 cooldown=60.0)
        ctrl = self._controller(clock, breakers={"whois": breaker})
        assert ctrl.refresh(0) is ServeMode.HEALTHY
        breaker.record_failure()
        assert ctrl.refresh(0) is ServeMode.DEGRADED
        clock.advance(60.0)
        breaker.allow()
        breaker.record_success()  # closes the breaker
        assert ctrl.refresh(0) is ServeMode.HEALTHY

    def test_exhausted_quota_degrades(self):
        clock = SimClock()
        meter = ServiceMeter(service="openai", clock=clock, rate=100.0,
                             burst=100.0, quota=10)
        ctrl = self._controller(clock, meters={"openai": meter})
        assert ctrl.refresh(0) is ServeMode.HEALTHY
        for _ in range(10):
            meter.charge()
        assert ctrl.refresh(0) is ServeMode.DEGRADED

    def test_draining_wins_over_everything(self):
        clock = SimClock()
        ctrl = self._controller(clock)
        ctrl.begin_drain(9)  # above the high watermark
        assert ctrl.mode is ServeMode.DRAINING
        assert ctrl.refresh(9) is ServeMode.DRAINING
        ctrl.end_drain()
        assert ctrl.mode is ServeMode.HEALTHY

    def test_transitions_recorded_with_reasons(self):
        clock = SimClock()
        ctrl = self._controller(clock)
        ctrl.refresh(8)
        clock.advance(5.0)
        ctrl.refresh(0)
        moves = [(t.from_mode, t.to_mode) for t in ctrl.transitions]
        assert moves == [("healthy", "shedding"), ("shedding", "healthy")]
        assert "high watermark" in ctrl.transitions[0].reason

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            DegradationController(SimClock(), high_watermark=4,
                                  low_watermark=4, breakers={}, meters={})


class TestLoadGenerator:
    def test_schedule_is_deterministic(self):
        spec = LoadSpec(profile="burst", requests=300, reporters=40, seed=9)
        first = generate_schedule(spec, n_posts=50)
        again = generate_schedule(spec, n_posts=50)
        assert first == again
        assert len(first) == 300

    def test_arrivals_are_time_ordered_with_unique_ids(self):
        spec = LoadSpec(profile="spike", requests=200, reporters=30, seed=2)
        schedule = generate_schedule(spec, n_posts=50)
        times = [a.at for a in schedule]
        assert times == sorted(times)
        assert len({a.request_id for a in schedule}) == 200

    def test_profiles_differ(self):
        kwargs = dict(requests=200, reporters=30, seed=2)
        by_profile = {
            profile: generate_schedule(LoadSpec(profile=profile, **kwargs),
                                       n_posts=50)
            for profile in ("steady", "burst", "spike")
        }
        assert by_profile["steady"] != by_profile["burst"]
        assert by_profile["burst"] != by_profile["spike"]

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadSpec(profile="tsunami")
        with pytest.raises(ConfigurationError):
            LoadSpec(requests=0)
        with pytest.raises(ConfigurationError):
            LoadSpec(budget_range=(5.0, 1.0))


class TestDispatch:
    def _service(self, **config):
        return IntakeService.create(
            SCENARIO,
            load=LoadSpec(profile="steady", requests=50, reporters=10,
                          seed=3),
            config=ServeConfig(**config),
            fault_plan=None,
        )

    def test_unknown_route_is_404(self):
        service = self._service()
        assert service.dispatch(Request("GET", "/v1/nope")).status == 404

    def test_status_endpoint_tracks_lifecycle(self):
        service = self._service()
        service.run()
        state = service.state
        done = next(rid for rid, status in state.statuses.items()
                    if status == "done")
        response = service.dispatch(Request("GET", f"/v1/reports/{done}"))
        assert response.status == 200
        assert response.body["status"] == "done"
        missing = service.dispatch(Request("GET", "/v1/reports/q9999999"))
        assert missing.status == 404

    def test_health_endpoint_reports_mode(self):
        service = self._service()
        service.run()
        response = service.dispatch(Request("GET", "/v1/health"))
        assert response.status == 200
        assert response.body["mode"] == "healthy"

    def test_stats_endpoint_mirrors_stats(self):
        service = self._service()
        service.run()
        response = service.dispatch(Request("GET", "/v1/stats"))
        assert response.status == 200
        assert response.body["submitted"] == 50


class TestBurstLoadSmoke:
    """The acceptance-criteria smoke: 10k bursty reports, small queue."""

    @pytest.fixture(scope="class")
    def service(self):
        return run_to_completion(
            scenario=SCENARIO,
            load=LoadSpec(profile="burst", requests=10_000, reporters=2000,
                          seed=7726),
            config=ServeConfig(queue_capacity=40, batch_size=32,
                               drain_interval=20.0, commit_every=2000),
            fault_plan=None,
            telemetry_factory=lambda world: Telemetry.create(
                clock=world.clock),
        )

    def test_queue_depth_never_exceeds_bound(self, service):
        stats = service.stats()
        assert stats["queue"]["max_depth"] <= stats["queue"]["capacity"]

    def test_service_sheds_and_recovers(self, service):
        moves = [(t.from_mode, t.to_mode)
                 for t in service.controller.transitions]
        assert ("healthy", "shedding") in moves
        assert service.controller.mode is ServeMode.HEALTHY
        assert service.stats()["rejected_by_reason"].get("shedding", 0) > 0

    def test_every_submission_is_accounted_for(self, service):
        stats = service.stats()
        assert stats["submitted"] == 10_000
        assert stats["accepted"] + stats["shed"] == stats["submitted"]
        assert (stats["processed"] + stats["timed_out"]
                == stats["accepted"])
        front_door = sum(
            stats["rejected_by_reason"].get(reason, 0)
            for reason in FRONT_DOOR_REASONS)
        assert front_door == stats["shed"]
        assert len(service.state.rejections) >= stats["shed"]

    def test_latency_percentiles_populated(self, service):
        latency = service.stats()["latency"]
        assert latency["count"] == service.state.processed
        assert 0 < latency["p50"] <= latency["p99"]

    def test_nothing_queued_after_drain(self, service):
        assert service.queue.depth == 0
        assert service.state.statuses
        assert "queued" not in set(service.state.statuses.values())

    def test_serve_snapshot_reaches_telemetry(self, service):
        snapshot = service.telemetry.serve_snapshot
        assert snapshot["submitted"] == 10_000
        text = service.telemetry.serve_table().to_text()
        assert "Queue depth p50/p90/p99/max" in text
        transitions = service.telemetry.serve_transition_table()
        assert any("shedding" in str(row) for row in transitions.rows)


class TestDegradedOperation:
    def test_outage_faults_push_service_degraded(self):
        from repro.faults import build_fault_plan

        service = run_to_completion(
            scenario=SCENARIO,
            load=LoadSpec(profile="burst", requests=800, reporters=150,
                          seed=11),
            config=ServeConfig(queue_capacity=64, batch_size=8,
                               drain_interval=20.0, commit_every=400),
            fault_plan=build_fault_plan("outage", seed=7726),
        )
        stats = service.stats()
        assert stats["degraded_batches"] > 0
        modes = {t["to_mode"] for t in stats["transitions"]}
        assert "degraded" in modes
        # Annotate-only batches still produce records, never lose them.
        assert stats["processed"] + stats["timed_out"] == stats["accepted"]

    def test_tight_budgets_time_out_in_queue(self):
        service = run_to_completion(
            scenario=SCENARIO,
            load=LoadSpec(profile="burst", requests=800, reporters=150,
                          seed=11, budget_range=(0.5, 2.0)),
            config=ServeConfig(queue_capacity=64, batch_size=8,
                               drain_interval=20.0, commit_every=400),
            fault_plan=None,
        )
        stats = service.stats()
        assert stats["timed_out"] > 0
        assert stats["processed"] + stats["timed_out"] == stats["accepted"]
        reasons = {r.reason for r in service.state.rejections}
        assert "deadline" in reasons
        timed_out = [rid for rid, status in service.state.statuses.items()
                     if status == "timed_out"]
        assert len(timed_out) == stats["timed_out"]
