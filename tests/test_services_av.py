"""Tests for the VirusTotal, GSB, AndroZoo, and Euphony simulators."""

import hashlib

import pytest

from repro.errors import ServiceUnavailable
from repro.services.androzoo import AndroZooService
from repro.services.euphony import EuphonyUnifier, tokenize_label
from repro.services.gsb import GoogleSafeBrowsingService
from repro.services.virustotal import (
    FileScanReport,
    VENDORS,
    VirusTotalService,
)
from repro.types import GsbStatus, Verdict

URLS = [f"https://host{i}.com/path{i}" for i in range(3000)]


@pytest.fixture(scope="module")
def vt():
    return VirusTotalService(rate_per_second=10_000)


@pytest.fixture(scope="module")
def vt_reports(vt):
    return vt.scan_urls(URLS)


class TestVirusTotalUrls:
    def test_deterministic_per_url(self, vt):
        first = vt.scan_url("https://example.com/x")
        second = vt.scan_url("https://example.com/x")
        assert first.verdicts == second.verdicts

    def test_roster_size(self):
        assert len(VENDORS) == 70  # "over 70 AV vendors" (§3.3.4)

    def test_undetected_share_near_45pct(self, vt_reports):
        undetected = sum(1 for r in vt_reports if r.undetected)
        share = undetected / len(vt_reports)
        assert 0.38 < share < 0.52  # Table 9: 44.9%

    def test_malicious_thresholds_decreasing(self, vt_reports):
        counts = [
            sum(1 for r in vt_reports if r.malicious >= level)
            for level in (1, 3, 5, 10, 15)
        ]
        assert counts == sorted(counts, reverse=True)
        total = len(vt_reports)
        assert 0.40 < counts[0] / total < 0.62   # >=1: paper 49.6%
        assert counts[4] / total < 0.02          # >=15: paper 0.3%

    def test_suspicious_rarely_many(self, vt_reports):
        at_least_5 = sum(1 for r in vt_reports if r.suspicious >= 5)
        assert at_least_5 / len(vt_reports) < 0.01  # paper: 0%

    def test_vendor_verdict_accessor(self, vt):
        report = vt.scan_url("https://example.com/y")
        verdict = report.vendor_verdict("Fortinet")
        assert verdict in (Verdict.CLEAN, Verdict.SUSPICIOUS,
                           Verdict.MALICIOUS)

    def test_scan_urls_dedup(self, vt):
        reports = vt.scan_urls(["https://a.com/x", "https://a.com/x"])
        assert len(reports) == 1


class TestVirusTotalFiles:
    def test_known_apk_gets_labels(self):
        vt = VirusTotalService(rate_per_second=1000)
        sha = hashlib.sha256(b"apk-1").hexdigest()
        vt.register_apk(sha, "SMSspy")
        report = vt.scan_file(sha)
        assert report.positives > 5
        assert any("SMSspy" in label or "smsspy" in label.lower()
                   for label in report.labels.values())

    def test_unknown_file_clean(self):
        vt = VirusTotalService(rate_per_second=1000)
        report = vt.scan_file("0" * 64)
        assert report.positives == 0


class TestGsb:
    @pytest.fixture(scope="class")
    def gsb(self):
        return GoogleSafeBrowsingService(rate_per_second=10_000)

    def test_api_flags_small_fraction(self, gsb):
        results = gsb.query_api_batch(URLS)
        share = sum(1 for r in results if r.flagged) / len(results)
        assert 0.002 < share < 0.03  # paper: 1.0%

    def test_transparency_blocks_half(self, gsb):
        sweep = gsb.transparency_sweep(URLS)
        blocked = sum(1 for s in sweep.values()
                      if s is GsbStatus.NOT_QUERIED)
        assert 0.42 < blocked / len(sweep) < 0.58  # paper: 50%

    def test_transparency_finds_more_than_api(self, gsb):
        sweep = gsb.transparency_sweep(URLS)
        unsafe = sum(1 for s in sweep.values() if s is GsbStatus.UNSAFE)
        api_unsafe = sum(1 for r in gsb.query_api_batch(URLS) if r.flagged)
        assert unsafe > api_unsafe  # Table 18's key contrast

    def test_vt_mirror_disagrees_with_api(self, gsb):
        api = {u for u in URLS if gsb.query_api(u).flagged}
        mirror = {u for u in URLS if gsb.verdict_on_virustotal(u)}
        assert mirror  # some flagged
        assert mirror != api  # stale snapshot differs

    def test_transparency_raises_when_blocked(self, gsb):
        blocked_url = next(
            u for u in URLS
            if _is_blocked(gsb, u)
        )
        with pytest.raises(ServiceUnavailable):
            gsb.query_transparency(blocked_url)

    def test_statuses_deterministic(self, gsb):
        sweep1 = gsb.transparency_sweep(URLS[:100])
        sweep2 = gsb.transparency_sweep(URLS[:100])
        assert sweep1 == sweep2


def _is_blocked(gsb, url):
    try:
        gsb.query_transparency(url)
        return False
    except ServiceUnavailable:
        return True


class TestAndroZoo:
    def test_corpus_membership(self):
        service = AndroZooService(corpus_size=100)
        known = next(iter(service.known_hashes(1)))
        assert known in service
        assert service.lookup(known) is not None

    def test_fresh_hashes_unknown(self):
        service = AndroZooService(corpus_size=100)
        fresh = hashlib.sha256(b"apk:fresh-dropper.com").hexdigest()
        assert fresh not in service
        assert service.lookup(fresh) is None

    def test_batch_lookup(self):
        service = AndroZooService(corpus_size=10)
        known = next(iter(service.known_hashes(1)))
        result = service.lookup_batch([known, "f" * 64])
        assert result[known] is not None
        assert result["f" * 64] is None


class TestEuphony:
    def test_tokenize_strips_platform_noise(self):
        assert tokenize_label("a variant of Android/SMSspy.C") == ["smsspy"]
        assert tokenize_label("Trojan.AndroidOS.HQWar.12") == ["hqwar"]

    def test_generic_labels_yield_nothing(self):
        assert tokenize_label("Android/Generic.Malware.7") == []
        assert tokenize_label("Trojan.AndroidOS.Agent.c") == []

    def test_majority_vote(self):
        report = FileScanReport(sha256="a" * 64, labels={
            "V1": "Android/SMSspy.A",
            "V2": "Trojan.AndroidOS.SMSspy.5",
            "V3": "Andr.smsspy-9",
            "V4": "Android/Generic.Malware.3",
            "V5": "Android/HQWar.B",
        })
        verdict = EuphonyUnifier().unify(report)
        assert verdict.family == "SMSspy"
        assert verdict.support == 3
        assert verdict.confident

    def test_insufficient_support(self):
        report = FileScanReport(sha256="b" * 64, labels={
            "V1": "Android/OneOff.A",
        })
        verdict = EuphonyUnifier(min_support=2).unify(report)
        assert verdict.family is None
        assert not verdict.confident

    def test_empty_labels(self):
        verdict = EuphonyUnifier().unify(
            FileScanReport(sha256="c" * 64, labels={})
        )
        assert verdict.family is None

    def test_end_to_end_with_vt(self):
        vt = VirusTotalService(rate_per_second=1000)
        sha = hashlib.sha256(b"apk-e2e").hexdigest()
        vt.register_apk(sha, "Rewardsteal")
        verdict = EuphonyUnifier().unify(vt.scan_file(sha))
        assert verdict.family == "Rewardsteal"
