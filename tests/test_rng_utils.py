"""Tests for repro.utils.rng."""

import random

import pytest

from repro.utils.rng import (
    WeightedSampler,
    derive,
    partition_count,
    sample_zipf,
    shuffled,
    stable_hash,
    weighted_choice,
)


class TestDerive:
    def test_same_inputs_same_stream(self):
        a = derive(1, "x").random()
        b = derive(1, "x").random()
        assert a == b

    def test_different_labels_diverge(self):
        assert derive(1, "x").random() != derive(1, "y").random()

    def test_different_seeds_diverge(self):
        assert derive(1, "x").random() != derive(2, "x").random()


class TestWeightedChoice:
    def test_single_outcome(self, rng):
        assert weighted_choice(rng, {"only": 1.0}) == "only"

    def test_empty_mapping_raises(self, rng):
        with pytest.raises(ValueError):
            weighted_choice(rng, {})

    def test_respects_weights(self, rng):
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[weighted_choice(rng, {"a": 9.0, "b": 1.0})] += 1
        assert counts["a"] > counts["b"] * 4


class TestWeightedSampler:
    def test_zero_weights_dropped(self, rng):
        sampler = WeightedSampler({"a": 0.0, "b": 1.0})
        assert all(sampler.sample(rng) == "b" for _ in range(50))

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            WeightedSampler({"a": 0.0})

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            WeightedSampler({"a": -1.0})

    def test_sample_many_length(self, rng):
        sampler = WeightedSampler({"a": 1, "b": 2})
        assert len(sampler.sample_many(rng, 17)) == 17

    def test_distribution_roughly_proportional(self, rng):
        sampler = WeightedSampler({"a": 3.0, "b": 1.0})
        draws = sampler.sample_many(rng, 4000)
        share = draws.count("a") / len(draws)
        assert 0.68 < share < 0.82

    def test_outcomes_exposed(self):
        sampler = WeightedSampler({"a": 1, "b": 2})
        assert set(sampler.outcomes) == {"a", "b"}


class TestSampleZipf:
    def test_in_range(self, rng):
        for _ in range(200):
            assert 0 <= sample_zipf(rng, 7) < 7

    def test_head_heavier_than_tail(self, rng):
        draws = [sample_zipf(rng, 10) for _ in range(3000)]
        assert draws.count(0) > draws.count(9) * 2

    def test_n_one(self, rng):
        assert sample_zipf(rng, 1) == 0

    def test_invalid_n(self, rng):
        with pytest.raises(ValueError):
            sample_zipf(rng, 0)


class TestPartitionCount:
    def test_sums_to_total(self, rng):
        counts = partition_count(rng, 1000, {"a": 1, "b": 2, "c": 3.5})
        assert sum(counts.values()) == 1000

    def test_zero_total(self, rng):
        counts = partition_count(rng, 0, {"a": 1, "b": 1})
        assert sum(counts.values()) == 0

    def test_proportions(self, rng):
        counts = partition_count(rng, 100, {"a": 3, "b": 1})
        assert counts["a"] == 75
        assert counts["b"] == 25

    def test_negative_total_raises(self, rng):
        with pytest.raises(ValueError):
            partition_count(rng, -1, {"a": 1})

    def test_zero_weights_raise(self, rng):
        with pytest.raises(ValueError):
            partition_count(rng, 10, {"a": 0.0})


class TestStableHash:
    def test_stable_across_calls(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_different_inputs(self):
        assert stable_hash("hello") != stable_hash("world")

    def test_respects_modulus(self):
        assert 0 <= stable_hash("x", modulus=97) < 97


class TestShuffled:
    def test_preserves_elements(self, rng):
        items = list(range(20))
        result = shuffled(rng, items)
        assert sorted(result) == items

    def test_does_not_mutate_input(self, rng):
        items = [3, 1, 2]
        shuffled(rng, items)
        assert items == [3, 1, 2]
