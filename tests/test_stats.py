"""Tests for repro.utils.stats, cross-checked against scipy."""

import math
import random

import pytest
import scipy.stats

from repro.utils.stats import (
    cohens_kappa,
    format_seconds_of_day,
    interpret_kappa,
    ks_two_sample,
    median,
    multilabel_kappa,
    pairwise,
    seconds_of_day,
    summarise,
)


class TestCohensKappa:
    def test_perfect_agreement(self):
        assert cohens_kappa(["a", "b", "a"], ["a", "b", "a"]) == 1.0

    def test_no_agreement_beyond_chance(self):
        a = ["x", "x", "y", "y"]
        b = ["x", "y", "x", "y"]
        assert abs(cohens_kappa(a, b)) < 1e-9

    def test_below_chance_is_negative(self):
        a = ["x", "x", "y", "y"]
        b = ["y", "y", "x", "x"]
        assert cohens_kappa(a, b) < 0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            cohens_kappa(["a"], ["a", "b"])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cohens_kappa([], [])

    def test_single_class_both(self):
        # Expected agreement is 1; degenerate case returns 1.
        assert cohens_kappa(["a", "a"], ["a", "a"]) == 1.0

    def test_matches_sklearn_formula(self):
        rng = random.Random(7)
        a = [rng.choice("abc") for _ in range(300)]
        b = [x if rng.random() < 0.8 else rng.choice("abc") for x in a]
        kappa = cohens_kappa(a, b)
        # Manual computation.
        n = len(a)
        po = sum(1 for x, y in zip(a, b) if x == y) / n
        pe = sum(
            (a.count(c) / n) * (b.count(c) / n) for c in set(a) | set(b)
        )
        assert math.isclose(kappa, (po - pe) / (1 - pe), rel_tol=1e-12)


class TestMultilabelKappa:
    def test_identical_sets(self):
        sets = [frozenset({"x"}), frozenset({"y", "z"}), frozenset()]
        assert multilabel_kappa(sets, sets, ["x", "y", "z"]) == 1.0

    def test_disjoint_sets_low(self):
        a = [frozenset({"x"})] * 10
        b = [frozenset({"y"})] * 10
        assert multilabel_kappa(a, b, ["x", "y"]) < 0.1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            multilabel_kappa([frozenset()], [], ["x"])


class TestInterpretKappa:
    @pytest.mark.parametrize("value,expected", [
        (0.95, "near-perfect"), (0.7, "substantial"), (0.5, "moderate"),
        (0.3, "fair"), (0.1, "slight"), (-0.2, "poor"),
    ])
    def test_bands(self, value, expected):
        assert interpret_kappa(value) == expected


class TestKsTwoSample:
    def test_identical_samples(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0]
        result = ks_two_sample(sample, sample)
        assert result.statistic == 0.0
        assert result.pvalue > 0.99

    def test_disjoint_samples(self):
        result = ks_two_sample([1, 2, 3] * 20, [10, 11, 12] * 20)
        assert result.statistic == 1.0
        assert result.significant

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])

    def test_matches_scipy_statistic(self):
        rng = random.Random(3)
        a = [rng.gauss(0, 1) for _ in range(200)]
        b = [rng.gauss(0.4, 1) for _ in range(250)]
        ours = ks_two_sample(a, b)
        theirs = scipy.stats.ks_2samp(a, b)
        assert math.isclose(ours.statistic, theirs.statistic, rel_tol=1e-9)

    def test_pvalue_close_to_scipy_asymp(self):
        rng = random.Random(5)
        a = [rng.gauss(0, 1) for _ in range(300)]
        b = [rng.gauss(0.25, 1) for _ in range(300)]
        ours = ks_two_sample(a, b)
        theirs = scipy.stats.ks_2samp(a, b, method="asymp")
        assert abs(ours.pvalue - theirs.pvalue) < 0.02

    def test_same_distribution_rarely_significant(self):
        rng = random.Random(11)
        a = [rng.random() for _ in range(400)]
        b = [rng.random() for _ in range(400)]
        result = ks_two_sample(a, b)
        assert result.pvalue > 0.01


class TestDescriptive:
    def test_median_odd(self):
        assert median([5, 1, 3]) == 3

    def test_median_even(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_summarise(self):
        s = summarise([1, 2, 3, 4])
        assert s.count == 4
        assert s.minimum == 1
        assert s.maximum == 4
        assert s.mean == 2.5
        assert s.median == 2.5

    def test_summarise_empty_raises(self):
        with pytest.raises(ValueError):
            summarise([])


class TestTimeHelpers:
    def test_seconds_of_day(self):
        assert seconds_of_day(12, 38) == 12 * 3600 + 38 * 60

    def test_format_seconds(self):
        assert format_seconds_of_day(seconds_of_day(12, 38)) == "12:38:00"

    def test_format_wraps_midnight(self):
        assert format_seconds_of_day(86400 + 61) == "00:01:01"

    def test_pairwise(self):
        assert pairwise([1, 2, 3]) == [(1, 2), (1, 3), (2, 3)]

    def test_pairwise_empty(self):
        assert pairwise([]) == []
