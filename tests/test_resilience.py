"""Unit tests for repro.resilience: retry policies and circuit breakers."""

import pytest

from repro.errors import (
    CircuitOpen,
    ConfigurationError,
    DeadlineExceeded,
    NotFound,
    QuotaExhausted,
    RateLimitExceeded,
    ServiceUnavailable,
)
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
    breaker_counts,
    call_with_policy,
)
from repro.services.base import ServiceMeter, SimClock, wait_and_charge


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0,
                             jitter=0.0)
        delays = [policy.delay_for(n) for n in (1, 2, 3, 4, 5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=10.0, jitter=0.2, seed=42)
        first = policy.delay_for(1, key="whois:url")
        again = policy.delay_for(1, key="whois:url")
        assert first == again
        assert 8.0 <= first <= 12.0
        # A different key jitters differently.
        other = policy.delay_for(1, key="whois:other-url")
        assert other != first

    def test_seed_changes_jitter(self):
        a = RetryPolicy(jitter=0.5, seed=1).delay_for(1, key="k")
        b = RetryPolicy(jitter=0.5, seed=2).delay_for(1, key="k")
        assert a != b

    def test_retry_after_hint_wins_when_longer(self):
        policy = RetryPolicy(base_delay=0.5, jitter=0.0)
        assert policy.delay_for(1, retry_after=9.0) == 9.0
        assert policy.delay_for(1, retry_after=0.1) == 0.5

    def test_should_retry_honors_retryable(self):
        policy = RetryPolicy(max_attempts=3)
        transient = ServiceUnavailable("down", service="s")
        permanent = ServiceUnavailable("gone", service="s", permanent=True)
        assert policy.should_retry(1, transient)
        assert not policy.should_retry(3, transient)  # attempts exhausted
        assert not policy.should_retry(1, permanent)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class _Flaky:
    """Callable failing a scripted number of times before succeeding."""

    def __init__(self, failures, exc_factory=None):
        self.failures = failures
        self.calls = 0
        self.exc_factory = exc_factory or (
            lambda: ServiceUnavailable("blip", service="svc"))

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_factory()
        return "ok"


class TestCallWithPolicy:
    def test_success_passthrough(self):
        clock = SimClock()
        result = call_with_policy(lambda: 7, policy=RetryPolicy(),
                                  clock=clock)
        assert result == 7
        assert clock.now == 0.0

    def test_retries_transient_and_advances_clock(self):
        clock = SimClock()
        flaky = _Flaky(failures=2)
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.0)
        assert call_with_policy(flaky, policy=policy, clock=clock,
                                service="svc") == "ok"
        assert flaky.calls == 3
        assert clock.now == pytest.approx(1.0 + 2.0)

    def test_exhausted_attempts_raise_with_count(self):
        clock = SimClock()
        flaky = _Flaky(failures=99)
        with pytest.raises(ServiceUnavailable) as excinfo:
            call_with_policy(flaky, policy=RetryPolicy(max_attempts=3),
                             clock=clock, service="svc")
        assert excinfo.value.resilience_attempts == 3
        assert flaky.calls == 3

    def test_non_retryable_fails_immediately(self):
        clock = SimClock()
        flaky = _Flaky(failures=99, exc_factory=lambda: QuotaExhausted(
            "quota", service="svc"))
        with pytest.raises(QuotaExhausted):
            call_with_policy(flaky, policy=RetryPolicy(max_attempts=5),
                             clock=clock)
        assert flaky.calls == 1
        assert clock.now == 0.0

    def test_rate_limit_retry_after_honored(self):
        clock = SimClock()
        flaky = _Flaky(failures=1, exc_factory=lambda: RateLimitExceeded(
            "slow down", service="svc", retry_after=30.0))
        policy = RetryPolicy(base_delay=0.1, jitter=0.0)
        assert call_with_policy(flaky, policy=policy, clock=clock) == "ok"
        assert clock.now == pytest.approx(30.0)

    def test_on_retry_observer_sees_each_backoff(self):
        clock = SimClock()
        seen = []
        call_with_policy(
            _Flaky(failures=2), policy=RetryPolicy(jitter=0.0), clock=clock,
            service="svc",
            on_retry=lambda svc, attempt, delay, exc: seen.append(
                (svc, attempt, delay)),
        )
        assert [(s, a) for s, a, _ in seen] == [("svc", 1), ("svc", 2)]

    def test_deadline_already_past_raises_before_any_attempt(self):
        clock = SimClock()
        clock.advance(100.0)
        probe = _Flaky(failures=0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            call_with_policy(probe, policy=RetryPolicy(), clock=clock,
                             service="svc", deadline=50.0)
        assert probe.calls == 0
        assert excinfo.value.resilience_attempts == 0
        assert excinfo.value.remaining == 0.0

    def test_deadline_cuts_backoff_instead_of_sleeping_past_it(self):
        clock = SimClock()
        flaky = _Flaky(failures=99)
        policy = RetryPolicy(max_attempts=10, base_delay=10.0, jitter=0.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            call_with_policy(flaky, policy=policy, clock=clock,
                             service="svc", deadline=15.0)
        # Attempt 1 fails, waits 10s; attempt 2's 20s backoff would land
        # past t=15, so the loop raises instead of sleeping.
        assert flaky.calls == 2
        assert clock.now == pytest.approx(10.0)
        assert isinstance(excinfo.value.__cause__, ServiceUnavailable)

    def test_deadline_failure_does_not_charge_the_breaker(self):
        clock = SimClock()
        clock.advance(100.0)
        breaker = CircuitBreaker("svc", clock, failure_threshold=1)
        with pytest.raises(DeadlineExceeded):
            call_with_policy(_Flaky(failures=0), policy=RetryPolicy(),
                             clock=clock, breaker=breaker, deadline=50.0)
        # The *caller* ran out of patience; the service is not at fault.
        assert breaker.state is BreakerState.CLOSED
        assert breaker.snapshot()["consecutive_failures"] == 0

    def test_deadline_in_the_future_is_invisible(self):
        clock = SimClock()
        flaky = _Flaky(failures=2)
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.0)
        assert call_with_policy(flaky, policy=policy, clock=clock,
                                deadline=1e9) == "ok"
        assert flaky.calls == 3

    def test_breaker_trips_and_fails_fast(self):
        clock = SimClock()
        breaker = CircuitBreaker("svc", clock, failure_threshold=3,
                                 cooldown=60.0)
        policy = RetryPolicy(max_attempts=1)  # one attempt per call
        for _ in range(3):
            with pytest.raises(ServiceUnavailable):
                call_with_policy(_Flaky(failures=9), policy=policy,
                                 clock=clock, breaker=breaker)
        assert breaker.state is BreakerState.OPEN
        probe = _Flaky(failures=0)
        with pytest.raises(CircuitOpen):
            call_with_policy(probe, policy=policy, clock=clock,
                             breaker=breaker)
        assert probe.calls == 0  # never reached the service


class TestBreakerCounts:
    def test_not_found_is_an_answer(self):
        assert not breaker_counts(NotFound("nope", service="s"))

    def test_permanent_block_does_not_count(self):
        blocked = ServiceUnavailable("blocked", service="s", permanent=True)
        assert not breaker_counts(blocked)

    def test_transient_and_quota_count(self):
        assert breaker_counts(ServiceUnavailable("down", service="s"))
        assert breaker_counts(QuotaExhausted("quota", service="s"))
        assert breaker_counts(RateLimitExceeded("429", service="s"))


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker("svc", SimClock(), failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker("svc", SimClock(), failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_rejects_until_cooldown(self):
        clock = SimClock()
        breaker = CircuitBreaker("svc", clock, failure_threshold=1,
                                 cooldown=30.0)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.fast_fails == 1
        clock.advance(29.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # half-open probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_success_closes(self):
        clock = SimClock()
        breaker = CircuitBreaker("svc", clock, failure_threshold=1,
                                 cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        clock = SimClock()
        breaker = CircuitBreaker("svc", clock, failure_threshold=3,
                                 cooldown=10.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe fails: re-open immediately
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        assert not breaker.allow()

    def test_observer_sees_transitions(self):
        clock = SimClock()
        events = []
        breaker = CircuitBreaker(
            "svc", clock, failure_threshold=1, cooldown=5.0,
            observer=lambda svc, event, value: events.append(event),
        )
        breaker.record_failure()
        breaker.allow()  # fast fail
        clock.advance(5.0)
        breaker.allow()  # half-open
        breaker.record_success()
        assert events == ["open", "fast_fail", "half_open", "close"]

    def test_snapshot_shape(self):
        breaker = CircuitBreaker("svc", SimClock())
        snap = breaker.snapshot()
        assert snap == {"state": "closed", "opens": 0, "fast_fails": 0,
                        "consecutive_failures": 0, "opened_at": None,
                        "half_open_probes": 0, "half_open_successes": 0}

    def test_snapshot_counts_half_open_probes(self):
        clock = SimClock()
        breaker = CircuitBreaker("svc", clock, failure_threshold=1,
                                 cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()        # probe 1...
        breaker.record_failure()      # ...fails, re-opens
        clock.advance(10.0)
        assert breaker.allow()        # probe 2...
        breaker.record_success()      # ...succeeds, closes
        snap = breaker.snapshot()
        assert snap["half_open_probes"] == 2
        assert snap["half_open_successes"] == 1
        assert snap["state"] == "closed"

    def test_half_open_counts_survive_state_roundtrip(self):
        clock = SimClock()
        breaker = CircuitBreaker("svc", clock, failure_threshold=1,
                                 cooldown=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        state = breaker.state_dict()
        clone = CircuitBreaker("svc", clock, failure_threshold=1,
                               cooldown=5.0)
        clone.restore_state(state)
        assert clone.snapshot() == breaker.snapshot()

    def test_restore_tolerates_records_without_probe_counts(self):
        # State dicts written before the probe counters existed must
        # still restore (counters default to zero).
        clock = SimClock()
        breaker = CircuitBreaker("svc", clock)
        state = breaker.state_dict()
        state.pop("half_open_probes")
        state.pop("half_open_successes")
        breaker.restore_state(state)
        assert breaker.snapshot()["half_open_probes"] == 0


class TestMeterGuards:
    """Satellite: mis-configured meters fail loudly, not forever."""

    def test_zero_rate_meter_raises_configuration_error(self):
        meter = ServiceMeter(service="svc", clock=SimClock(), rate=0.0,
                             burst=2.0)
        meter.charge()
        meter.charge()
        with pytest.raises(ConfigurationError):
            meter.charge()

    def test_burst_still_usable_with_zero_rate(self):
        meter = ServiceMeter(service="svc", clock=SimClock(), rate=0.0,
                             burst=3.0)
        for _ in range(3):
            meter.charge()
        assert meter.used == 3

    def test_wait_and_charge_bounded(self):
        # rate high enough to dodge the charge() guard but never enough
        # to refill a whole-token deficit within the bound.
        meter = ServiceMeter(service="svc", clock=SimClock(), rate=1e-6,
                             burst=1.0)
        meter.charge()
        with pytest.raises(ConfigurationError):
            wait_and_charge(meter, max_total_wait=60.0)

    def test_wait_and_charge_still_converges_normally(self):
        meter = ServiceMeter(service="svc", clock=SimClock(), rate=10.0,
                             burst=1.0)
        meter.charge()
        waited = wait_and_charge(meter)
        assert waited > 0
        assert meter.used == 2


class TestBreakerSnapshotsOnFailedRuns:
    """Regression: breaker snapshots must survive a run that crashes.

    ``run_pipeline`` used to capture breaker state only on the success
    path, so a partially-failed run (an unexpected non-ServiceError
    escaping a stage) returned telemetry with no breaker snapshots. The
    capture now lives in a ``finally``.
    """

    def test_snapshots_captured_when_enrichment_crashes(self, monkeypatch):
        from repro.core.pipeline import run_pipeline
        from repro.obs import Telemetry
        from repro.services.virustotal import VirusTotalService
        from repro.world.scenario import ScenarioConfig, build_world

        world = build_world(ScenarioConfig(seed=13, n_campaigns=4))
        telemetry = Telemetry.create(clock=world.clock)

        def explode(self, url, precomputed=None):
            raise RuntimeError("simulated operator error")

        # A non-ServiceError escapes _guarded and aborts the run after
        # the sender stage already built (and exercised) breakers.
        monkeypatch.setattr(VirusTotalService, "scan_url", explode)
        with pytest.raises(RuntimeError, match="operator error"):
            run_pipeline(world, telemetry=telemetry)
        assert telemetry.breaker_snapshots, \
            "crashed run lost its breaker snapshots"
        assert "hlr" in telemetry.breaker_snapshots
        # Meters were captured by the same crash path too.
        assert telemetry.meter_snapshots


class TestSpansSurviveCrashes:
    """Regression: a crashed run's trace must still serialise coherently.

    Stage accounting spans are closed in a ``finally``
    (``Enricher._metered_stage``) and any span the crash left open on
    the tracer stack is flagged + ended by ``Tracer.abandon_open`` in
    ``run_pipeline``'s own ``finally`` — so a partial trace always
    exports, and unfinished spans serialise with ``wall_seconds=None``
    rather than a bogus zero.
    """

    def _crash_run(self):
        import json

        from repro.core.pipeline import run_pipeline
        from repro.errors import SimulatedCrash
        from repro.faults import CrashPoint, FaultPlan
        from repro.obs import Telemetry
        from repro.world.scenario import ScenarioConfig, build_world

        world = build_world(ScenarioConfig(seed=13, n_campaigns=4))
        telemetry = Telemetry.create(clock=world.clock)
        plan = FaultPlan(rules=[CrashPoint("whois", 2)], profile="crash")
        with pytest.raises(SimulatedCrash):
            run_pipeline(world, telemetry=telemetry, fault_plan=plan)
        return telemetry, json

    def test_partial_spans_captured_and_serialisable(self):
        telemetry, json_mod = self._crash_run()
        spans = {span.name: span for span in telemetry.tracer.spans}
        # The stage that died still has its accounting span, closed by
        # the finally with the requests it charged before the crash.
        assert "enrich/whois" in spans
        assert spans["enrich/whois"].finished
        assert spans["enrich/whois"].attributes["requests"] >= 1
        # Ancestor spans saw the crash propagate: each context manager
        # closed its span on the way out, stamping the error.
        assert spans["pipeline"].finished
        assert "SimulatedCrash" in spans["pipeline"].attributes["error"]
        assert "SimulatedCrash" in spans["enrich"].attributes["error"]
        # Nothing is left open, and the whole trace exports as JSON —
        # including the profile built over the partial span set.
        assert telemetry.tracer.open_spans() == []
        document = json_mod.loads(telemetry.to_json())
        assert document["spans"], "crashed run serialised no spans"
        assert document["profile"]["stages"], "crashed run lost profile"

    def test_unfinished_spans_serialise_as_none_not_zero(self):
        from repro.obs.profile import build_profile
        from repro.obs.trace import Tracer

        tracer = Tracer(time_source=lambda: 0.0)
        parent = tracer.start("pipeline")
        tracer.start("enrich")   # popped unfinished by the parent's end
        tracer.end(parent)
        dumped = {span["name"]: span for span in tracer.to_dicts()}
        assert dumped["enrich"]["wall_seconds"] is None
        profile = build_profile(tracer.spans)
        assert profile.stages["enrich"].unfinished == 1
        assert profile.stages["enrich"].durations.count == 0

    def test_abandon_open_flags_error_and_empties_stack(self):
        from repro.obs.trace import Tracer

        tracer = Tracer(time_source=lambda: 0.0)
        tracer.start("pipeline")
        tracer.start("enrich")
        abandoned = tracer.abandon_open(error="SimulatedCrash: boom")
        assert [span.name for span in abandoned] == ["enrich", "pipeline"]
        assert all(span.finished for span in abandoned)
        assert all(span.attributes["abandoned"] == 1 for span in abandoned)
        assert all("SimulatedCrash" in span.attributes["error"]
                   for span in abandoned)
        assert tracer.open_spans() == []
