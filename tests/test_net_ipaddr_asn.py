"""Tests for IPv4 modelling and the AS registry."""

import random

import pytest

from repro.errors import NotFound, ValidationError
from repro.net.asn import AsRecord, AsRegistry, HostingChoice
from repro.net.ipaddr import AddressPool, IPv4, Prefix


class TestIPv4:
    def test_parse_and_str_round_trip(self):
        for text in ("0.0.0.0", "255.255.255.255", "104.16.2.1"):
            assert str(IPv4.parse(text)) == text

    def test_ordering(self):
        assert IPv4.parse("1.0.0.1") < IPv4.parse("1.0.0.2")

    def test_bad_octet(self):
        with pytest.raises(ValidationError):
            IPv4.parse("1.2.3.256")

    def test_bad_shape(self):
        with pytest.raises(ValidationError):
            IPv4.parse("1.2.3")

    def test_non_numeric(self):
        with pytest.raises(ValidationError):
            IPv4.parse("a.b.c.d")

    def test_out_of_range_value(self):
        with pytest.raises(ValidationError):
            IPv4(2**32)


class TestPrefix:
    def test_parse(self):
        prefix = Prefix.parse("104.16.0.0/14")
        assert prefix.length == 14
        assert prefix.size == 2**18

    def test_contains(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert IPv4.parse("10.200.3.4") in prefix
        assert IPv4.parse("11.0.0.1") not in prefix

    def test_host_bits_rejected(self):
        with pytest.raises(ValidationError):
            Prefix(IPv4.parse("10.0.0.1"), 8)

    def test_bad_length(self):
        with pytest.raises(ValidationError):
            Prefix(IPv4.parse("10.0.0.0"), 33)

    def test_str(self):
        assert str(Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_hosts_iteration(self):
        prefix = Prefix.parse("192.168.1.0/30")
        hosts = list(prefix.hosts())
        assert len(hosts) == 4
        assert str(hosts[0]) == "192.168.1.0"

    def test_random_address_inside(self, rng):
        prefix = Prefix.parse("172.16.0.0/16")
        for _ in range(50):
            assert prefix.random_address(rng) in prefix


class TestAddressPool:
    def test_unique_allocations(self, rng):
        pool = AddressPool([Prefix.parse("10.0.0.0/28")])
        addresses = {pool.allocate(rng).value for _ in range(16)}
        assert len(addresses) == 16

    def test_exhaustion_raises(self, rng):
        pool = AddressPool([Prefix.parse("10.0.0.0/30")])
        for _ in range(4):
            pool.allocate(rng)
        with pytest.raises(ValidationError):
            pool.allocate(rng)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValidationError):
            AddressPool([])


class TestAsRegistry:
    @pytest.fixture(scope="class")
    def registry(self):
        return AsRegistry()

    def test_known_asn(self, registry):
        record = registry.record(13335)
        assert record.organisation == "Cloudflare"
        assert record.is_proxy

    def test_unknown_asn_raises(self, registry):
        with pytest.raises(NotFound):
            registry.record(99999999)

    def test_multi_asn_organisation(self, registry):
        amazon = registry.asns_for("Amazon")
        assert {r.asn for r in amazon} == {16509, 14618}

    def test_lookup_matches_allocation(self, registry, rng):
        address = registry.allocate_address(63949, rng)
        assert registry.lookup(address).asn == 63949

    def test_lookup_unannounced_raises(self, registry):
        with pytest.raises(NotFound):
            registry.lookup(IPv4.parse("203.0.113.1"))

    def test_country_of_deterministic(self, registry, rng):
        address = registry.allocate_address(16509, rng)
        assert registry.country_of(address) == registry.country_of(address)

    def test_country_of_in_footprint(self, registry, rng):
        address = registry.allocate_address(16509, rng)
        assert registry.country_of(address) in registry.record(16509).countries

    def test_bulletproof_catalogue(self, registry):
        names = {r.organisation for r in registry.bulletproof_asns()}
        assert "FranTech Solutions" in names
        assert "Proton66 OOO" in names
        assert "Stark Industries" in names

    def test_organisations_sorted(self, registry):
        orgs = registry.organisations()
        assert orgs == sorted(orgs)


class TestHostingChoice:
    def test_visible_asn_prefers_proxy(self):
        choice = HostingChoice(origin_asn=16509, proxy_asn=13335)
        assert choice.visible_asn == 13335

    def test_visible_asn_without_proxy(self):
        choice = HostingChoice(origin_asn=16509)
        assert choice.visible_asn == 16509
