"""Tests for every analysis builder against the shared pipeline run.

These assert the *shape* findings of the paper: who ranks first, what
dominates, which invariants the tables must satisfy.
"""

import pytest

from repro.analysis.detection import (
    build_table9,
    build_table18,
    gsb_comparison,
    vt_thresholds,
)
from repro.analysis.domains import (
    build_table6,
    build_table16,
    build_table17,
    free_hosting_counts,
    registrar_usage,
    tld_counters,
)
from repro.analysis.hosting import (
    as_usage,
    build_table8,
    hosting_overview,
)
from repro.analysis.overview import (
    build_table1,
    build_table15,
    collection_funnel,
)
from repro.analysis.sender import (
    build_figure3_table,
    build_table3,
    build_table4,
    build_table14,
    figure3_data,
    sender_kind_split,
)
from repro.analysis.shorteners import build_table5, shortener_usage
from repro.analysis.strategies import (
    brand_counts,
    build_figure2_table,
    build_table10,
    build_table11,
    build_table12,
    build_table13,
    language_counts,
    lure_scam_matrix,
    scam_category_counts,
    timestamp_analysis,
)
from repro.analysis.tls import build_table7, ca_usage, tls_overview
from repro.types import Forum, LurePrinciple, ScamType, SenderIdKind


class TestTable1:
    def test_twitter_dominates(self, pipeline_run):
        table = build_table1(pipeline_run.collection, pipeline_run.dataset)
        records = table.to_records()
        twitter = next(r for r in records if r["Online Forum"] == "Twitter")
        for forum in ("Reddit", "Smishtank", "Smishing.eu", "Pastebin"):
            row = next(r for r in records if r["Online Forum"] == forum)
            assert twitter["Posts"] > row["Posts"]

    def test_total_row_present(self, pipeline_run):
        table = build_table1(pipeline_run.collection, pipeline_run.dataset)
        assert table.rows[-1][0] == "Total"

    def test_funnel_monotonic(self, pipeline_run):
        funnel = collection_funnel(pipeline_run.collection,
                                   pipeline_run.dataset)
        assert funnel["posts_collected"] >= funnel["records_curated"]
        assert funnel["records_curated"] >= funnel["unique_messages"]


class TestSenderAnalyses:
    def test_kind_split_matches_paper_order(self, enriched):
        split = sender_kind_split(enriched)
        assert split.phone_numbers > split.alphanumeric > split.emails

    def test_table3_mobile_dominates(self, enriched):
        table = build_table3(enriched)
        text = table.to_text()
        assert "Mobile" in text
        assert "Bad Format" in text

    def test_table4_vodafone_top(self, enriched):
        table = build_table4(enriched)
        assert table.rows[0][0] == "Vodafone"

    def test_table4_vodafone_multi_country(self, enriched):
        table = build_table4(enriched)
        countries = str(table.rows[0][2])
        assert len(countries.split(",")) >= 3

    def test_table14_india_top(self, enriched):
        table = build_table14(enriched)
        assert table.rows[0][0] == "IND"

    def test_table14_live_leq_all(self, enriched):
        table = build_table14(enriched)
        for row in table.rows:
            assert row[3] <= row[2]

    def test_figure3_percentages_sum(self, enriched):
        data = figure3_data(enriched)
        assert data
        for country, mix in data.items():
            assert sum(mix.values()) == pytest.approx(100.0, abs=0.5)

    def test_figure3_india_is_banking(self, enriched):
        data = figure3_data(enriched)
        if "IND" in data:
            assert max(data["IND"].items(), key=lambda kv: kv[1])[0] is \
                ScamType.BANKING

    def test_figure3_table_builds(self, enriched):
        table = build_figure3_table(enriched)
        assert len(table) > 0


class TestUrlAnalyses:
    def test_table5_bitly_top(self, enriched):
        table = build_table5(enriched)
        assert table.rows[0][0] == "bit.ly"

    def test_shortener_usage_consistent(self, enriched):
        totals, per_scam = shortener_usage(enriched)
        for name, scams in per_scam.items():
            assert sum(scams.values()) <= totals[name]

    def test_table6_com_top(self, enriched):
        direct, _ = tld_counters(enriched)
        assert direct.most_common(1)[0][0] == "com"

    def test_table6_shortened_tlds_differ(self, enriched):
        _, shortened = tld_counters(enriched)
        assert shortened
        assert "ly" in shortened  # bit.ly and friends

    def test_table16_generic_dominates(self, enriched):
        table = build_table16(enriched)
        records = table.to_records()
        generic = next(r for r in records if "gTLD" in r["Type"])
        cc = next(r for r in records if "ccTLD" in r["Type"])
        assert generic["URLs"] > cc["URLs"]

    def test_table17_godaddy_top(self, enriched):
        table = build_table17(enriched)
        assert table.rows[0][0] == "GoDaddy"

    def test_registrar_usage_counts_domains_once(self, enriched):
        counts, _ = registrar_usage(enriched)
        unique_domains = {
            e.registered_domain for e in enriched.urls.values()
            if e.whois is not None and e.whois.registrar
        }
        assert sum(counts.values()) == len(unique_domains)

    def test_free_hosting_observed(self, enriched):
        counts = free_hosting_counts(enriched)
        # §4.3: web.app / ngrok.io style deployments exist.
        assert sum(counts.values()) >= 0  # may be small in a small world


class TestTlsHosting:
    def test_table7_lets_encrypt_top(self, enriched):
        table = build_table7(enriched)
        assert table.rows[0][0] == "Let's Encrypt"

    def test_ca_usage_domains_leq_certs(self, enriched):
        certificates, domains = ca_usage(enriched)
        for issuer in certificates:
            assert domains[issuer] <= certificates[issuer]

    def test_tls_overview(self, enriched):
        overview = tls_overview(enriched)
        assert overview is not None
        assert overview.total_certificates >= overview.domains_with_certs
        assert overview.per_domain.median <= overview.per_domain.mean * 3

    def test_table8_builds_without_cloudflare_rows(self, enriched):
        table = build_table8(enriched)
        assert all(row[0] != "Cloudflare" for row in table.rows)

    def test_hosting_overview_cloudflare_share(self, enriched):
        overview = hosting_overview(enriched)
        if overview.resolving_domains >= 10:
            assert 0.0 <= overview.cloudflare_share <= 0.6

    def test_as_usage_unique_ips(self, enriched):
        ip_counts, asns, countries = as_usage(enriched)
        for org in ip_counts:
            assert asns[org]
            assert countries[org]


class TestDetection:
    def test_table9_thresholds_monotone(self, enriched):
        data = vt_thresholds(enriched)
        values = list(data.malicious_at_least.values())
        assert values == sorted(values, reverse=True)

    def test_table9_undetected_share(self, enriched):
        data = vt_thresholds(enriched)
        share = data.undetected / data.total
        assert 0.3 < share < 0.65  # ~45% in the paper

    def test_table9_builds(self, enriched):
        assert len(build_table9(enriched)) == 9

    def test_gsb_transparency_beats_api(self, enriched):
        data = gsb_comparison(enriched)
        from repro.types import GsbStatus
        unsafe = data.transparency.get(GsbStatus.UNSAFE, 0)
        # The transparency report finds more than the API (Table 18) —
        # modulo small-sample noise, never fewer than half.
        assert unsafe * 2 >= data.api_unsafe

    def test_table18_builds(self, enriched):
        table = build_table18(enriched)
        assert len(table) == 3


class TestStrategies:
    def test_table10_banking_top(self, enriched):
        counts = scam_category_counts(enriched)
        assert counts.most_common(1)[0][0] is ScamType.BANKING

    def test_table10_banking_share_near_half(self, enriched):
        counts = scam_category_counts(enriched)
        share = counts[ScamType.BANKING] / sum(counts.values())
        assert 0.3 < share < 0.6  # paper: 45.1%

    def test_table11_english_top(self, enriched):
        counts = language_counts(enriched)
        top, _ = counts.most_common(1)[0]
        assert top == "en"

    def test_table11_english_majority(self, enriched):
        counts = language_counts(enriched)
        assert counts["en"] / sum(counts.values()) > 0.5

    def test_table12_sbi_top(self, enriched):
        counts = brand_counts(enriched)
        assert counts.most_common(1)[0][0] == "State Bank of India"

    def test_table13_checkmarks(self, enriched):
        matrix = lure_scam_matrix(enriched)
        # Authority holds for the impersonation scams (Table 13).
        assert matrix[LurePrinciple.AUTHORITY][ScamType.BANKING]
        # Kindness marks the Hey mum/dad conversation scam.
        assert matrix[LurePrinciple.KINDNESS][ScamType.HEY_MUM_DAD]
        # Dishonesty applies to none of the named categories.
        assert not any(matrix[LurePrinciple.DISHONESTY].values())

    def test_tables_build(self, enriched):
        for builder in (build_table10, build_table11, build_table12,
                        build_table13):
            assert len(builder(enriched)) > 0


class TestFigure2:
    def test_burst_campaign_removed(self, enriched):
        analysis = timestamp_analysis(enriched)
        assert analysis.excluded_campaign_size > 50  # the SBI burst

    def test_weekday_business_hours(self, enriched):
        analysis = timestamp_analysis(enriched)
        for day in ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday"):
            if analysis.samples[day]:
                med = analysis.medians[day]
                hour = int(med.split(":")[0])
                assert 9 <= hour <= 20  # §5.1

    def test_ks_results_cover_pairs(self, enriched):
        analysis = timestamp_analysis(enriched)
        assert len(analysis.ks_results) > 10

    def test_figure2_table_builds(self, enriched):
        table = build_figure2_table(enriched)
        assert len(table) == 7


class TestTable15:
    def test_yearly_rows(self, pipeline_run):
        table = build_table15(pipeline_run.collection)
        years = [row[0] for row in table.rows[:-1]]
        assert all(y.isdigit() for y in years)
        assert years == sorted(years)
        assert table.rows[-1][0] == "Total"
