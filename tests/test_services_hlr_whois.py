"""Tests for the HLR and WHOIS service simulators."""

import datetime as dt

import pytest

from repro.errors import NotFound
from repro.services.hlr import HlrLookupService
from repro.services.whois import WhoisService
from repro.types import PhoneNumberType, ScamType
from repro.utils.rng import derive
from repro.world.geography import default_countries
from repro.world.mno import default_operators
from repro.world.numbering import NumberFactory
from repro.net.asn import AsRegistry
from repro.world.infrastructure import InfrastructureBuilder


@pytest.fixture()
def number_factory():
    return NumberFactory(derive(21, "hlr-test"))


@pytest.fixture()
def hlr(number_factory):
    return HlrLookupService(number_factory.ledger)


class TestHlr:
    def test_issued_mobile_resolves(self, hlr, number_factory):
        countries = default_countries()
        operators = default_operators()
        issued = number_factory.mobile_number(
            countries.get("GBR"), operators.get("EE Limited")
        )
        record = hlr.lookup(issued.e164)
        assert record.number_type is PhoneNumberType.MOBILE
        assert record.original_operator == "EE Limited"
        assert record.country_iso3 == "GBR"

    def test_unissued_plausible_number_is_dead(self, hlr):
        record = hlr.lookup("+447700900999")
        assert record.number_type is PhoneNumberType.MOBILE
        assert record.status is not None
        assert not record.is_live

    def test_too_many_digits_bad_format(self, hlr):
        record = hlr.lookup("+4477009001234567890")
        assert record.number_type is PhoneNumberType.BAD_FORMAT
        assert not record.is_valid

    def test_landline_flagged(self, hlr):
        # GBR landline prefix 20 (London).
        record = hlr.lookup("+442071234567")
        assert record.number_type is PhoneNumberType.LANDLINE

    def test_unknown_dial_plan_bad_format(self, hlr):
        record = hlr.lookup("+0009999999")
        assert record.number_type is PhoneNumberType.BAD_FORMAT

    def test_empty_string_bad_format(self, hlr):
        assert hlr.lookup("abc").number_type is PhoneNumberType.BAD_FORMAT

    def test_batch_deduplicates_requests(self, hlr, number_factory):
        countries = default_countries()
        operators = default_operators()
        issued = number_factory.mobile_number(
            countries.get("IND"), operators.get("AirTel")
        )
        before = hlr.meter.used
        results = hlr.lookup_batch([issued.e164] * 5)
        assert len(results) == 5
        assert hlr.meter.used == before + 1

    def test_bad_format_ledger_numbers(self, hlr, number_factory):
        issued = number_factory.bad_format_number()
        record = hlr.lookup(issued.e164)
        assert record.number_type is PhoneNumberType.BAD_FORMAT


@pytest.fixture()
def assets():
    builder = InfrastructureBuilder(
        derive(22, "whois-test"), as_registry=AsRegistry()
    )
    return [
        builder.register_domain("c1", ScamType.BANKING, "TestBank",
                                dt.date(2022, 1, 1))
        for _ in range(60)
    ]


@pytest.fixture()
def whois(assets):
    return WhoisService(assets)


class TestWhois:
    def test_registered_domain_resolves(self, whois, assets):
        registered = [a for a in assets if not a.is_free_hosting][0]
        record = whois.query(registered.registered_domain)
        assert record.registrar == registered.registrar
        assert record.created == registered.created_at

    def test_unknown_domain_raises(self, whois):
        with pytest.raises(NotFound):
            whois.query("never-registered-domain.com")

    def test_platform_subdomain_reports_operator(self, whois):
        record = whois.query("abc.web.app")
        assert record.is_platform_subdomain
        assert record.platform_operator == "Google LLC"
        assert record.registrar is None

    def test_privacy_deterministic(self, whois, assets):
        registered = [a for a in assets if not a.is_free_hosting][0]
        first = whois.query(registered.registered_domain)
        second = whois.query(registered.registered_domain)
        assert first.privacy_protected == second.privacy_protected

    def test_batch_skips_unknown(self, whois, assets):
        registered = [a for a in assets if not a.is_free_hosting][0]
        records = whois.query_batch([
            registered.registered_domain, "unknown.com",
            registered.registered_domain,
        ])
        assert len(records) == 1
