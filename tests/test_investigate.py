"""Tests for the playbook-driven investigation engine (repro.investigate).

Covers the acceptance guarantees end to end:

* playbook validation and the shipped presets,
* §6 byte-identity: the ``case-study`` preset reproduces
  ``run_case_study`` field-for-field (and table-for-table),
* pool-matrix equivalence: serial/thread/process fleets produce the
  same fingerprint, with and without fault profiles,
* evidence-package integrity (verification, tamper detection, on-disk
  round trips),
* durable sessions: kill/resume with zero duplicate charges.
"""

import datetime as dt

import pytest

from repro.analysis.malware import build_table19, family_distribution_table
from repro.core.active import run_case_study
from repro.core.pipeline import run_pipeline
from repro.errors import CheckpointError, ConfigurationError
from repro.investigate import (
    EvidencePackage,
    InvestigationSession,
    Playbook,
    PlaybookStep,
    PLAYBOOKS,
    case_study_sample,
    charged_calls,
    fleet_fingerprint,
    fleet_items,
    get_playbook,
    registry_keys,
    run_case_study_playbook,
    run_fleet,
    run_investigation,
    run_killed_then_resumed,
    verify_package,
    verify_package_dict,
    write_packages,
)
from repro.world.scenario import ScenarioConfig, build_world

#: A small scenario with enough droppers that the charged scan phase
#: actually runs (several unique APK payloads in the §6 sample window).
FLEET_SCENARIO = dict(seed=7, n_campaigns=12, apk_campaign_fraction=0.5)
FLEET_SAMPLE = 80


def _fleet_scenario() -> ScenarioConfig:
    return ScenarioConfig(**FLEET_SCENARIO)


def _fresh_world_and_dataset(config: ScenarioConfig):
    world = build_world(config)
    run = run_pipeline(world)
    return world, run.dataset


def _fleet_run(**kwargs):
    world, dataset = _fresh_world_and_dataset(_fleet_scenario())
    report = run_fleet(world, dataset, sample=FLEET_SAMPLE, **kwargs)
    return report, world


@pytest.fixture(scope="module")
def serial_fleet():
    """One serial full-funnel fleet, shared by the read-only tests."""
    return _fleet_run()


class TestPlaybooks:
    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            PlaybookStep.make("steal_cookies")

    def test_empty_playbook_rejected(self):
        with pytest.raises(ConfigurationError):
            Playbook(name="hollow", description="no steps")

    def test_unknown_preset_lists_choices(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_playbook("no-such-playbook")
        for name in sorted(PLAYBOOKS):
            assert name in str(excinfo.value)

    def test_case_study_preset_is_the_section6_protocol(self):
        steps = get_playbook("case-study").steps
        assert [s.op for s in steps] == [
            "resolve_shortener", "check_dns", "fetch", "fetch",
            "download_payload", "hash_and_scan",
        ]
        assert steps[2].param("device") == "desktop"
        assert steps[3].param("device") == "android"

    def test_full_funnel_preset_adds_funnel_navigation(self):
        playbook = get_playbook("full-funnel")
        assert playbook.has_op("follow_redirects")
        assert playbook.has_op("submit_form")
        submit = next(s for s in playbook.steps if s.op == "submit_form")
        assert submit.param("pii") == "synthetic"

    def test_step_and_playbook_round_trip(self):
        step = PlaybookStep.make("fetch", device="android")
        assert step.param("device") == "android"
        assert step.param("missing", "fallback") == "fallback"
        assert PlaybookStep.from_dict(step.to_dict()) == step
        playbook = get_playbook("full-funnel")
        assert Playbook.from_dict(playbook.to_dict()) == playbook

    def test_describe_renders_params(self):
        step = PlaybookStep.make("fetch", device="desktop")
        assert step.describe() == "fetch(device=desktop)"
        assert "->" in get_playbook("case-study").describe()


class TestCaseStudyIdentity:
    """The §6 preset must be byte-identical to ``run_case_study``."""

    CONFIG = ScenarioConfig(seed=7, n_campaigns=10)
    SAMPLE_POSTS = 50

    @pytest.fixture(scope="class")
    def reports(self):
        # Two independently built worlds: each arm charges its own
        # meters, so they cannot share one.
        world_a, dataset_a = _fresh_world_and_dataset(self.CONFIG)
        world_b, dataset_b = _fresh_world_and_dataset(self.CONFIG)
        base = run_case_study(world_a, dataset_a,
                              sample_posts=self.SAMPLE_POSTS)
        preset = run_case_study_playbook(world_b, dataset_b,
                                         sample_posts=self.SAMPLE_POSTS)
        return base, preset, world_a, world_b

    def test_scalar_fields_match(self, reports):
        base, preset, _, _ = reports
        assert preset.sampled_reports == base.sampled_reports
        assert preset.investigated_urls == base.investigated_urls
        assert preset.dead_short_links == base.dead_short_links
        assert preset.apk_downloads == base.apk_downloads
        assert preset.androzoo_hits == base.androzoo_hits

    def test_verdicts_and_investigations_match(self, reports):
        base, preset, _, _ = reports
        assert preset.family_verdicts == base.family_verdicts
        assert preset.investigations == base.investigations

    def test_tables_render_identically(self, reports):
        base, preset, _, _ = reports
        assert build_table19(preset).to_text() == \
            build_table19(base).to_text()
        assert family_distribution_table(preset).to_text() == \
            family_distribution_table(base).to_text()

    def test_charged_calls_match(self, reports):
        _, _, world_a, world_b = reports
        assert charged_calls(world_b) == charged_calls(world_a)

    def test_sampling_protocol_is_exact(self, reports):
        base, _, world_a, _ = reports
        # The shared sampler must pick the same records §6's own
        # sampling does (seeded Random(6) over dated Twitter records).
        _, dataset_a = _fresh_world_and_dataset(self.CONFIG)
        sample = case_study_sample(dataset_a,
                                   sample_posts=self.SAMPLE_POSTS)
        assert len(sample) == base.sampled_reports


class TestFleetItems:
    def test_items_are_url_bearing_and_dated(self, serial_fleet):
        report, world = serial_fleet
        _, dataset = _fresh_world_and_dataset(_fleet_scenario())
        items = fleet_items(dataset)
        assert items, "scenario produced no investigable records"
        assert [item.index for item in items] == list(range(len(items)))
        by_id = {record.record_id: record for record in dataset.records}
        for item in items:
            record = by_id[item.record_id]
            assert record.url is not None
            assert isinstance(item.on, dt.date)

    def test_sample_keeps_a_prefix(self):
        _, dataset = _fresh_world_and_dataset(_fleet_scenario())
        full = fleet_items(dataset)
        sampled = fleet_items(dataset, sample=5)
        assert sampled == full[:5]


class TestFleetEquivalence:
    """Fingerprints must not depend on pool kind or worker count."""

    def test_serial_fleet_exercises_the_charged_phase(self, serial_fleet):
        report, world = serial_fleet
        assert report.payloads, (
            "fleet scenario must yield payloads or the equivalence "
            "tests prove nothing about the charged phase"
        )
        assert charged_calls(world)["virustotal"] > 0
        assert len(report.verdicts) + report.scan_gaps == \
            len(report.payloads)

    @pytest.mark.parametrize("pool_kind,workers", [
        ("thread", 4),
        ("process", 4),
    ])
    def test_pool_matrix_matches_serial(self, serial_fleet,
                                        pool_kind, workers):
        base_report, base_world = serial_fleet
        report, world = _fleet_run(pool_kind=pool_kind, workers=workers)
        assert fleet_fingerprint(report, world) == \
            fleet_fingerprint(base_report, base_world)

    def test_fault_profile_matches_across_pools(self):
        from repro.faults import build_fault_plan
        plans = [build_fault_plan("flaky", seed=0) for _ in range(2)]
        serial_report, serial_world = _fleet_run(fault_plan=plans[0])
        pooled_report, pooled_world = _fleet_run(
            fault_plan=plans[1], pool_kind="process", workers=4)
        assert fleet_fingerprint(serial_report, serial_world) == \
            fleet_fingerprint(pooled_report, pooled_world)

    def test_report_stats_snapshot_shape(self, serial_fleet):
        report, _ = serial_fleet
        stats = report.stats()
        assert stats["playbook"] == "full-funnel"
        assert stats["investigated"] == len(report.probes)
        assert stats["evidence_packages"] == len(report.packages)
        assert stats["scans_completed"] == len(report.verdicts)
        assert stats["pool"] == {"kind": "serial", "workers": 1}
        assert sum(stats["outcomes"].values()) == stats["investigated"]
        for digest in stats["step_latency_ms"].values():
            assert digest["count"] > 0
            assert digest["p50"] <= digest["p99"]

    def test_every_probe_outcome_is_classified(self, serial_fleet):
        report, _ = serial_fleet
        known = {
            "shortener_dead", "nxdomain", "dead_host", "apk_download",
            "pii_harvested", "credentials_harvested", "device_gated",
            "phishing_page",
        }
        assert set(report.outcomes) <= known


class TestEvidencePackages:
    def test_all_packages_verify(self, serial_fleet):
        report, _ = serial_fleet
        assert report.packages
        for package in report.packages:
            assert verify_package(package)
            assert verify_package_dict(package.to_dict())

    def test_custody_sequences_are_gapless(self, serial_fleet):
        report, _ = serial_fleet
        for package in report.packages:
            sequences = [entry.sequence for entry in package.custody]
            assert sequences == list(range(len(sequences)))

    def test_charged_steps_are_flagged_in_custody(self, serial_fleet):
        report, world = serial_fleet
        charged = sum(
            1 for package in report.packages
            for entry in package.custody if entry.charged_service
        )
        assert charged == len(report.verdicts)

    def test_tampered_finding_is_detected(self, serial_fleet):
        report, _ = serial_fleet
        source = next(p for p in report.packages if p.findings)
        package = EvidencePackage(
            campaign_id=source.campaign_id,
            findings=[dict(f) for f in source.findings],
            custody=list(source.custody),
        )
        manifest = package.manifest()
        assert verify_package(package, manifest)
        package.findings[0]["type"] = "doctored"
        assert not verify_package(package, manifest)

    def test_tampered_serialised_body_is_detected(self, serial_fleet):
        report, _ = serial_fleet
        data = next(p for p in report.packages if p.findings).to_dict()
        assert verify_package_dict(data)
        data["body"]["campaign_id"] = "someone-else"
        assert not verify_package_dict(data)
        assert not verify_package_dict({"manifest": {}, "body": None})

    def test_write_packages_round_trips(self, serial_fleet, tmp_path):
        import json

        report, _ = serial_fleet
        manifest_path = write_packages(tmp_path, report.packages)
        index = json.loads(manifest_path.read_text())
        assert len(index["packages"]) == len(report.packages)
        for entry in index["packages"]:
            data = json.loads((tmp_path / entry["file"]).read_text())
            assert verify_package_dict(data)
            assert data["manifest"]["content_sha256"] == \
                entry["content_sha256"]


class TestDurableSessions:
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        base = run_investigation(_fleet_scenario(), sample=FLEET_SAMPLE)
        assert len(base.report.payloads) >= 2, (
            "need at least two payloads so a kill can land between scans"
        )
        resumed = run_killed_then_resumed(
            tmp_path / "sess", kill_at=1,
            scenario=_fleet_scenario(), sample=FLEET_SAMPLE,
        )
        assert fleet_fingerprint(resumed.report, resumed.world) == \
            fleet_fingerprint(base.report, base.world)
        # Zero duplicate charges: crash + resume spend exactly what one
        # uninterrupted run spends.
        assert charged_calls(resumed.world) == charged_calls(base.world)
        assert resumed.session is not None
        assert resumed.session.resuming

    def test_kill_that_never_fires_is_an_error(self, tmp_path):
        with pytest.raises(AssertionError):
            run_killed_then_resumed(
                tmp_path / "sess", kill_at=10_000,
                scenario=_fleet_scenario(), sample=FLEET_SAMPLE,
            )

    def test_create_refuses_existing_session(self, tmp_path):
        directory = tmp_path / "sess"
        InvestigationSession.create(
            directory, scenario={}, playbook="full-funnel", sample=None)
        with pytest.raises(ConfigurationError):
            InvestigationSession.create(
                directory, scenario={}, playbook="full-funnel",
                sample=None)

    def test_load_requires_a_manifest(self, tmp_path):
        with pytest.raises(CheckpointError):
            InvestigationSession.load(tmp_path / "nothing-here")

    def test_resume_requires_a_directory(self):
        with pytest.raises(ValueError):
            run_investigation(resume=True)

    def test_restore_rejects_foreign_state(self, tmp_path):
        session = InvestigationSession.create(
            tmp_path / "sess", scenario={}, playbook="full-funnel",
            sample=None)
        session._registry_state = {"meter:weird-service": {}}
        with pytest.raises(CheckpointError):
            session.restore({})

    def test_registry_keys_cover_both_shapes(self):
        plain = registry_keys(proxied=False)
        proxied = registry_keys(proxied=True)
        assert set(plain) < set(proxied)
        assert any(key.startswith("proxy:") for key in proxied)
