"""Shared run-fingerprint helper for the equivalence test suites.

``fingerprint_run`` serializes a completed
:class:`~repro.core.pipeline.PipelineRun` down to every observable byte
— dataset rows, gaps, limitations, the rendered paper report, meter
snapshots, and the final sim-clock reading — so two runs are equal iff
the JSON strings are equal. Both the worker-count equivalence proof
(``test_exec_equivalence.py``) and the crash/resume kill harness
(``test_checkpoint_equivalence.py``) assert against it.
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.analysis.report import generate_paper_report
from repro.core.pipeline import PipelineRun


def fingerprint_run(run: PipelineRun) -> str:
    """Every observable byte of a completed run, as canonical JSON."""
    world = run.world
    service_meters = {
        name: meter.snapshot()
        for name, meter in (
            ("hlr", world.hlr.meter), ("whois", world.whois.meter),
            ("crtsh", world.crtsh.meter),
            ("passivedns", world.passivedns.meter),
            ("ipinfo", world.ipinfo.meter),
            ("virustotal", world.virustotal.meter),
            ("gsb", world.gsb.meter),
        )
    }
    forum_meters = {
        forum.value: service.meter.snapshot()
        for forum, service in world.forums.items()
    }
    payload = {
        "rows": [record.to_json_dict() for record in run.annotated_dataset],
        "gaps": [asdict(gap) for gap in run.enriched.gaps],
        "limitations": [asdict(lim) for lim in run.collection.limitations],
        "report": generate_paper_report(run).render(),
        "posts_seen": run.collection.posts_seen,
        "api_errors": list(run.collection.api_errors),
        "service_meters": service_meters,
        "forum_meters": forum_meters,
        "clock_now": world.clock.now,
    }
    return json.dumps(payload, sort_keys=True, default=str)
