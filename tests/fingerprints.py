"""Shared run-fingerprint helpers for the equivalence test suites.

``fingerprint_run`` serializes a completed
:class:`~repro.core.pipeline.PipelineRun` down to every observable byte
— dataset rows, gaps, limitations, the rendered paper report, meter
snapshots, and the final sim-clock reading — so two runs are equal iff
the JSON strings are equal. Both the worker-count equivalence proof
(``test_exec_equivalence.py``) and the crash/resume kill harness
(``test_checkpoint_equivalence.py``) assert against it.

``canonical_fingerprint`` is the looser sibling that
``test_stream_equivalence.py`` needs: a stream session assigns record
ids epoch by epoch and stamps gaps/limitations with epoch indices, so
byte equality with a batch run only holds after renumbering records in
a content-sorted canonical order (annotation maps remapped to match)
and dropping the stream-only ``epoch`` field. Everything else — row
contents, gap/limitation accounting, and the full rendered paper report
(case study excluded: it actively samples forums, charging meters) —
must still agree exactly.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict
from typing import Dict

from repro.analysis.report import generate_paper_report
from repro.core.dataset import SmishingDataset
from repro.core.enrichment import EnrichedDataset
from repro.core.pipeline import PipelineRun
from repro.obs import NULL_TELEMETRY

#: Wire-level names of every metered enrichment service (the keys of
#: ``EnrichmentServices.meters()``).
SERVICE_NAMES = ("hlr", "whois", "crtsh", "spamhaus-pdns", "ipinfo",
                 "virustotal", "gsb", "openai")


def fingerprint_run(run: PipelineRun) -> str:
    """Every observable byte of a completed run, as canonical JSON."""
    world = run.world
    service_meters = {
        name: meter.snapshot()
        for name, meter in (
            ("hlr", world.hlr.meter), ("whois", world.whois.meter),
            ("crtsh", world.crtsh.meter),
            ("passivedns", world.passivedns.meter),
            ("ipinfo", world.ipinfo.meter),
            ("virustotal", world.virustotal.meter),
            ("gsb", world.gsb.meter),
        )
    }
    forum_meters = {
        forum.value: service.meter.snapshot()
        for forum, service in world.forums.items()
    }
    payload = {
        "rows": [record.to_json_dict() for record in run.annotated_dataset],
        "gaps": [asdict(gap) for gap in run.enriched.gaps],
        "limitations": [asdict(lim) for lim in run.collection.limitations],
        "report": generate_paper_report(run).render(),
        "posts_seen": run.collection.posts_seen,
        "api_errors": list(run.collection.api_errors),
        "service_meters": service_meters,
        "forum_meters": forum_meters,
        "clock_now": world.clock.now,
    }
    return json.dumps(payload, sort_keys=True, default=str)


def _content_key(record) -> str:
    """A record's identity minus its (numbering-dependent) record id."""
    fields = {k: v for k, v in record.to_json_dict().items()
              if k != "record_id"}
    return json.dumps(fields, sort_keys=True, default=str)


def _strip(payload: Dict[str, object], *drop: str) -> str:
    return json.dumps({k: v for k, v in payload.items() if k not in drop},
                      sort_keys=True, default=str)


def canonicalize_run(run: PipelineRun) -> PipelineRun:
    """The same run with records renumbered in content-sorted order.

    Both a batch run and a stream session's ``as_pipeline_run`` view
    pass through here before comparison, so numbering differences (and
    the dataset-order dependence of the §3.4 evaluation sample) cancel
    out while every content difference still shows.
    """
    annotated = sorted(run.annotated_dataset, key=_content_key)
    id_map: Dict[str, str] = {}
    renumbered = []
    for index, record in enumerate(annotated):
        new_id = f"c{index:07d}"
        id_map[record.record_id] = new_id
        renumbered.append(dataclasses.replace(record, record_id=new_id))
    dataset = SmishingDataset(renumbered)
    enr = run.enriched
    annotations = {id_map[rid]: labels
                   for rid, labels in enr.annotations.items()
                   if rid in id_map}
    raw_annotations = {
        id_map[rid]: dataclasses.replace(annotation,
                                         message_id=id_map[rid])
        for rid, annotation in enr.raw_annotations.items()
        if rid in id_map
    }
    enriched = EnrichedDataset(
        dataset=dataset,
        urls=dict(sorted(enr.urls.items())),
        senders=dict(sorted(enr.senders.items())),
        annotations=annotations,
        raw_annotations=raw_annotations,
        gaps=list(enr.gaps),
    )
    return PipelineRun(
        world=run.world, config=run.config, collection=run.collection,
        curation_stats=run.curation_stats, dataset=dataset,
        enriched=enriched, telemetry=NULL_TELEMETRY,
    )


def canonical_fingerprint(run: PipelineRun) -> str:
    """Numbering- and epoch-insensitive fingerprint of a run's results.

    Covers the annotated rows, the gap and limitation ledgers (modulo
    the stream-only ``epoch`` stamp and the ``simulated_at`` clock
    stamp — a stream's clock is legitimately further along by epoch 2),
    and the full rendered paper report minus the case study (it
    actively samples forums and would charge meters during
    fingerprinting).
    """
    canon = canonicalize_run(run)
    payload = {
        "rows": [record.to_json_dict() for record in canon.dataset],
        "gaps": sorted(_strip(asdict(gap), "epoch", "simulated_at")
                       for gap in canon.enriched.gaps),
        "limitations": sorted(_strip(asdict(lim), "epoch", "simulated_at")
                              for lim in canon.collection.limitations),
        "report": generate_paper_report(
            canon, include_case_study=False).render(),
    }
    return json.dumps(payload, sort_keys=True, default=str)


def clean_subset_fingerprint(run: PipelineRun) -> str:
    """Hostile-input differential fingerprint: what the *clean subset*
    of a run's reports determines.

    A hostile world adds reports that the quarantine layer diverts (or
    the parsers drop) before any record is produced, so raw collection
    volumes — and the two collection-volume tables, 1 and 15 — differ
    legitimately. Everything downstream of curation must not: the
    annotated rows, the gap and limitation ledgers, and every
    dataset-derived paper artefact must be byte-identical to the
    ``--hostile none`` run. That is the clean-subset-identical
    guarantee of ``tests/test_hostile_equivalence.py``.
    """
    canon = canonicalize_run(run)
    report = generate_paper_report(canon, include_case_study=False)
    report.tables.pop("table1", None)
    report.tables.pop("table15", None)
    payload = {
        "rows": [record.to_json_dict() for record in canon.dataset],
        "gaps": sorted(_strip(asdict(gap), "epoch", "simulated_at")
                       for gap in canon.enriched.gaps),
        "limitations": sorted(_strip(asdict(lim), "epoch", "simulated_at")
                              for lim in canon.collection.limitations),
        "report": report.render(),
    }
    return json.dumps(payload, sort_keys=True, default=str)


def charged_calls_from_services(services) -> Dict[str, int]:
    """Per-service charged-call totals off a live service battery."""
    return {name: meter.snapshot()["used"]
            for name, meter in services.meters().items()}


def profiled_fingerprint(run_factory, *, profile: bool):
    """Run ``run_factory`` (optionally under the ``--profile`` function
    profiler, exactly as the CLI wraps it) and fingerprint the result.

    The profiling determinism guard (``test_profile_determinism.py``)
    calls this twice per configuration — profiler on and off — and
    asserts byte equality: profiling is pure observation, so it must
    never reach the fingerprint.
    """
    from repro.obs import FunctionProfiler

    if not profile:
        return fingerprint_run(run_factory())
    profiler = FunctionProfiler()
    with profiler:
        run = run_factory()
    run.telemetry.capture_function_profile(profiler.snapshot())
    return fingerprint_run(run)


def charged_calls_from_telemetry(telemetry) -> Dict[str, int]:
    """Per-service charged-call totals from a batch run's telemetry.

    The batch pipeline builds its own openai endpoint internally, so the
    only place its meter outlives the run is the telemetry's end-of-run
    snapshots; the seven world-owned services ride along under the same
    wire names.
    """
    return {name: telemetry.meter_snapshots[name]["used"]
            for name in SERVICE_NAMES
            if name in telemetry.meter_snapshots}
