"""Tests for the forum services and their API semantics."""

import datetime as dt

import pytest

from repro.errors import QuotaExhausted, ServiceUnavailable, ValidationError
from repro.forums.base import COLLECTION_KEYWORDS, ForumService, Post
from repro.forums.base_meter import ForumMeter
from repro.forums.pastebin import (
    ANALYST_USER,
    PastebinService,
    format_paste,
    parse_paste,
)
from repro.forums.reddit import RedditService
from repro.forums.smishingeu import SHUTDOWN_DATE, SmishingEuService
from repro.forums.smishtank import SmishtankService
from repro.forums.twitter import (
    ACADEMIC_API_SHUTDOWN,
    REALTIME_START,
    TwitterService,
)
from repro.types import Forum


def _post(forum, post_id, when, body, **kwargs):
    return Post(
        post_id=post_id, forum=forum, author="user",
        created_at=when, body=body, **kwargs,
    )


T0 = dt.datetime(2022, 1, 1, 12, 0)


class TestForumBase:
    def make_twitter(self, n=5):
        service = TwitterService()
        for i in range(n):
            service.add_post(_post(
                Forum.TWITTER, f"t{i}", T0 + dt.timedelta(days=i),
                f"smishing report {i}",
            ))
        return service

    def test_add_and_len(self):
        assert len(self.make_twitter(3)) == 3

    def test_wrong_forum_rejected(self):
        service = TwitterService()
        with pytest.raises(ValidationError):
            service.add_post(_post(Forum.REDDIT, "r1", T0, "x"))

    def test_duplicate_id_rejected(self):
        service = self.make_twitter(1)
        with pytest.raises(ValidationError):
            service.add_post(_post(Forum.TWITTER, "t0", T0, "y"))

    def test_keyword_search_case_insensitive(self):
        service = self.make_twitter()
        page = service.search("SMISHING")
        assert len(page.posts) == 5

    def test_search_window(self):
        service = self.make_twitter()
        page = service.search(
            "smishing",
            since=T0 + dt.timedelta(days=1),
            until=T0 + dt.timedelta(days=3),
        )
        assert [p.post_id for p in page.posts] == ["t1", "t2"]

    def test_pagination(self):
        service = TwitterService()
        service.page_size = 3
        for i in range(8):
            service.add_post(_post(Forum.TWITTER, f"t{i}", T0, "sms scam"))
        first = service.search("sms scam")
        assert len(first.posts) == 3
        assert not first.exhausted
        rest = service.search_all("sms scam")
        assert len(rest) == 8

    def test_deleted_posts_hidden(self):
        service = self.make_twitter()
        service.delete_post("t0")
        page = service.search("smishing")
        assert all(p.post_id != "t0" for p in page.posts)

    def test_deleted_visible_when_requested(self):
        service = self.make_twitter()
        service.delete_post("t0")
        page = service.search("smishing", include_deleted=True)
        assert any(p.post_id == "t0" for p in page.posts)

    def test_meter_counts_requests(self):
        service = self.make_twitter()
        before = service.meter.used
        service.search("smishing")
        assert service.meter.used == before + 1

    def test_meter_cap_enforced(self):
        service = TwitterService(meter=ForumMeter(service="t", cap=2))
        service.add_post(_post(Forum.TWITTER, "t0", T0, "smishing"))
        service.search("smishing")
        service.search("smishing")
        with pytest.raises(QuotaExhausted):
            service.search("smishing")

    def test_collection_keywords_match_paper(self):
        assert set(COLLECTION_KEYWORDS) == {
            "smishing", "phishing sms", "sms scam", "sms fraud"
        }


class TestTwitterShutdown:
    def test_archive_search_before_shutdown(self):
        service = TwitterService()
        service.add_post(_post(Forum.TWITTER, "t1", T0, "smishing"))
        service.query_time = REALTIME_START
        page = service.full_archive_search(
            "smishing", since=T0 - dt.timedelta(days=1),
            until=T0 + dt.timedelta(days=1),
        )
        assert len(page.posts) == 1

    def test_archive_search_after_shutdown_raises(self):
        service = TwitterService()
        service.query_time = ACADEMIC_API_SHUTDOWN
        with pytest.raises(ServiceUnavailable) as excinfo:
            service.full_archive_search("smishing", since=T0, until=T0)
        assert excinfo.value.permanent

    def test_realtime_sees_later_deleted_posts(self):
        service = TwitterService()
        service.add_post(_post(Forum.TWITTER, "t1", T0, "smishing"))
        service.delete_post("t1")
        service.query_time = REALTIME_START
        page = service.realtime_search(
            "smishing", since=T0 - dt.timedelta(days=1),
            until=T0 + dt.timedelta(days=1),
        )
        assert len(page.posts) == 1

    def test_fetch_original(self):
        service = TwitterService()
        original = _post(Forum.TWITTER, "t1", T0, "look at this")
        reply = _post(Forum.TWITTER, "t2", T0, "that's smishing",
                      in_reply_to="t1")
        service.add_posts([original, reply])
        assert service.fetch_original(reply).post_id == "t1"
        assert service.fetch_original(original) is None


class TestReddit:
    def test_subreddit_listing(self):
        service = RedditService()
        service.add_post(_post(Forum.REDDIT, "r1", T0, "sms scam",
                               subreddit="Scams"))
        service.add_post(_post(Forum.REDDIT, "r2", T0, "sms scam",
                               subreddit="phishing"))
        assert [p.post_id for p in service.posts_in_subreddit("Scams")] == ["r1"]

    def test_subreddit_counts(self):
        service = RedditService()
        for i in range(3):
            service.add_post(_post(Forum.REDDIT, f"r{i}", T0, "x",
                                   subreddit="Scams"))
        assert service.subreddit_counts() == {"Scams": 3}


class TestSmishingEu:
    def test_scrape_before_shutdown(self):
        service = SmishingEuService()
        service.add_post(_post(Forum.SMISHING_EU, "e1", T0, "report"))
        posts = service.scrape(dt.date(2023, 1, 2))
        assert len(posts) == 1

    def test_scrape_after_shutdown_raises(self):
        service = SmishingEuService()
        with pytest.raises(ServiceUnavailable):
            service.scrape(SHUTDOWN_DATE)

    def test_scrape_only_past_reports(self):
        service = SmishingEuService()
        service.add_post(_post(Forum.SMISHING_EU, "e1",
                               dt.datetime(2023, 5, 1), "later report"))
        assert service.scrape(dt.date(2023, 1, 2)) == []

    def test_weekly_dates_are_mondays(self):
        service = SmishingEuService()
        dates = service.weekly_scrape_dates(dt.date(2022, 11, 28),
                                            dt.date(2023, 12, 31))
        assert dates
        assert all(d.weekday() == 0 for d in dates)
        assert all(d < SHUTDOWN_DATE for d in dates)


class TestPastebin:
    def test_paste_round_trip(self):
        body = format_paste("+447700900123", dt.datetime(2022, 3, 1, 9, 30),
                            "Your parcel is held: evil.com/pay")
        parsed = parse_paste(body)
        assert parsed.sender == "+447700900123"
        assert parsed.received == "2022-03-01 09:30"
        assert "evil.com/pay" in parsed.message

    def test_parse_garbage_raises(self):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            parse_paste("whatever unstructured text")

    def test_pastes_by_user(self):
        service = PastebinService()
        service.add_post(_post(Forum.PASTEBIN, "p1", T0, "body",))
        analyst_post = Post(
            post_id="p2", forum=Forum.PASTEBIN, author=ANALYST_USER,
            created_at=T0, body="body",
        )
        service.add_post(analyst_post)
        assert [p.post_id for p in service.pastes_by_user(ANALYST_USER)] == ["p2"]


class TestSmishtank:
    def test_list_reports_window(self):
        service = SmishtankService()
        service.add_post(_post(Forum.SMISHTANK, "s1", T0, "report"))
        service.add_post(_post(Forum.SMISHTANK, "s2",
                               T0 + dt.timedelta(days=400), "report"))
        posts = service.list_reports(
            since=T0 - dt.timedelta(days=1),
            until=T0 + dt.timedelta(days=1),
        )
        assert [p.post_id for p in posts] == ["s1"]

    def test_list_reports_no_keyword_needed(self):
        service = SmishtankService()
        service.add_post(_post(Forum.SMISHTANK, "s1", T0,
                               "no keywords here at all"))
        assert len(service.list_reports()) == 1
