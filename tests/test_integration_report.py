"""Integration test: the full paper report over one pipeline run."""

import pytest

from repro.analysis.report import generate_paper_report

EXPECTED_ARTEFACTS = {
    "table1", "table3", "table4", "table5", "table6", "table7", "table8",
    "table9", "table10", "table11", "table12", "table13", "table14",
    "table15", "table16", "table17", "table18", "table19",
    "figure2", "figure3",
}


@pytest.fixture(scope="module")
def report(pipeline_run):
    return generate_paper_report(pipeline_run)


class TestPaperReport:
    def test_every_table_and_figure_present(self, report):
        assert set(report.tables) == EXPECTED_ARTEFACTS

    def test_all_tables_nonempty(self, report):
        for key, table in report.tables.items():
            assert len(table) > 0, key

    def test_render_is_printable(self, report):
        text = report.render()
        assert "Table 1" in text
        assert "Table 19" in text
        assert "Figure 2" in text
        assert "OpenAI evaluation" in text

    def test_case_study_attached(self, report):
        assert report.case_study is not None
        assert report.case_study.apk_downloads > 0

    def test_evaluation_attached(self, report):
        assert report.evaluation is not None
        assert report.evaluation.sample_size == 150

    def test_headline_shape_findings(self, report):
        """The paper's who-wins findings, asserted in one place."""
        assert report.tables["table4"].rows[0][0] == "Vodafone"
        assert report.tables["table5"].rows[0][0] == "bit.ly"
        assert report.tables["table6"].rows[0][0] == "com"
        assert report.tables["table7"].rows[0][0] == "Let's Encrypt"
        assert report.tables["table12"].rows[0][0] == "State Bank of India"
        assert report.tables["table14"].rows[0][0] == "IND"
        assert report.tables["table17"].rows[0][0] == "GoDaddy"

    def test_optional_sections_can_be_skipped(self, pipeline_run):
        slim = generate_paper_report(
            pipeline_run, include_case_study=False,
            include_evaluation=False,
        )
        assert "table19" not in slim.tables
        assert slim.evaluation is None
