"""Tests for the SMS message / event / receipt models."""

import datetime as dt

from repro.net.url import parse_url
from repro.sms.message import (
    AnnotationLabels,
    CampaignSummary,
    DeliveryReceipt,
    SmishingEvent,
    SmsMessage,
)
from repro.sms.senderid import classify_sender_id
from repro.types import LurePrinciple, ScamType

WHEN = dt.datetime(2022, 7, 1, 10, 30)


def make_message(text="Short test message"):
    return SmsMessage(
        text=text,
        sender=classify_sender_id("+447700900123"),
        received_at=WHEN,
        recipient_country="GBR",
        url=parse_url("https://evil.com/x"),
    )


class TestSmsMessage:
    def test_segments_short(self):
        assert make_message().segments == 1

    def test_segments_long(self):
        assert make_message("x" * 320).segments == 3

    def test_has_url(self):
        assert make_message().has_url


class TestSmishingEvent:
    def make_event(self, language="en"):
        return SmishingEvent(
            event_id="e1",
            message=make_message(),
            campaign_id="c1",
            scam_type=ScamType.BANKING,
            language=language,
            brand="Chase",
            lures=frozenset({LurePrinciple.AUTHORITY}),
        )

    def test_proxies(self):
        event = self.make_event()
        assert event.received_at == WHEN
        assert event.sender.digits == "447700900123"
        assert str(event.url) == "https://evil.com/x"

    def test_is_english(self):
        assert self.make_event().is_english
        assert not self.make_event(language="es").is_english


class TestDeliveryReceipt:
    def test_for_message_costs_segments(self):
        receipt = DeliveryReceipt.for_message(
            "e1", make_message("y" * 200), path="aggregator",
            spoofed_sender=True, unit_price=0.5,
        )
        assert receipt.segments == 2
        assert receipt.cost_units == 1.0
        assert receipt.encoding == "gsm7"
        assert receipt.spoofed_sender

    def test_ucs2_encoding_detected(self):
        receipt = DeliveryReceipt.for_message(
            "e1", make_message("ваш счет заблокирован"), path="mno",
            spoofed_sender=False,
        )
        assert receipt.encoding == "ucs2"


class TestAnnotationLabels:
    def test_agreement_tuple_is_hashable_and_ordered(self):
        labels = AnnotationLabels(
            scam_type=ScamType.BANKING, language="en", brand="Chase",
            lures=frozenset({LurePrinciple.TIME_URGENCY,
                             LurePrinciple.AUTHORITY}),
        )
        tup = labels.agreement_tuple()
        assert hash(tup)
        assert tup[3] == tuple(sorted(labels.lures))

    def test_equality(self):
        a = AnnotationLabels(ScamType.SPAM, "en", None, frozenset())
        b = AnnotationLabels(ScamType.SPAM, "en", None, frozenset())
        assert a == b


class TestCampaignSummary:
    def test_observe_tracks_window(self):
        summary = CampaignSummary(
            campaign_id="c1", scam_type=ScamType.BANKING, brand="Chase",
            languages=("en",), target_countries=("GBR",),
        )
        summary.observe(WHEN)
        summary.observe(WHEN - dt.timedelta(days=2))
        summary.observe(WHEN + dt.timedelta(days=3))
        assert summary.message_count == 3
        assert summary.first_sent == WHEN - dt.timedelta(days=2)
        assert summary.last_sent == WHEN + dt.timedelta(days=3)
