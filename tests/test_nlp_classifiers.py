"""Tests for translation, brand NER, scam-type and lure classification."""

import pytest

from repro.nlp.brands_ner import BrandRecognizer
from repro.nlp.lures import LureDetector
from repro.nlp.scamtype import ScamTypeClassifier
from repro.nlp.translate import TemplateTranslator
from repro.types import LurePrinciple, ScamType


class TestTranslator:
    @pytest.fixture(scope="class")
    def translator(self):
        return TemplateTranslator()

    def test_english_passthrough(self, translator):
        result = translator.translate("hello there", "en")
        assert result.text == "hello there"
        assert result.matched_template

    def test_spanish_template_translates(self, translator):
        text = ("BBVA: su cuenta ha sido bloqueada por actividad sospechosa. "
                "Por favor verifique sus datos en https://x.com/a para "
                "evitar la suspension.")
        result = translator.translate(text, "es")
        assert result.matched_template
        assert "BBVA" in result.text
        assert "blocked" in result.text
        assert "https://x.com/a" in result.text

    def test_unmatched_text_flagged(self, translator):
        result = translator.translate("texto completamente libre", "es")
        assert not result.matched_template
        assert result.text == "texto completamente libre"

    def test_memory_is_populated(self, translator):
        assert translator.memory_size() > 50
        assert translator.memory_size("es") >= 5


class TestBrandRecognizer:
    @pytest.fixture(scope="class")
    def ner(self):
        return BrandRecognizer()

    def test_plain_brand(self, ner):
        assert ner.find_primary("Your Netflix subscription expired") == \
            "Netflix"

    def test_leet_brand(self, ner):
        assert ner.find_primary("Your N3tfl!x payment failed") == "Netflix"

    def test_alias(self, ner):
        assert ner.find_primary("SBI alert: account locked") == \
            "State Bank of India"

    def test_multiword_brand(self, ner):
        assert ner.find_primary(
            "State Bank of India: your KYC is pending"
        ) == "State Bank of India"

    def test_multiword_beats_substring(self, ner):
        # "Royal Mail" must be preferred over any shorter match inside.
        assert ner.find_primary("Royal Mail: parcel fee due") == "Royal Mail"

    def test_brand_in_url_host(self, ner):
        assert ner.find_primary("pay at netflix.secure-billing.xyz/x") == \
            "Netflix"

    def test_no_brand(self, ner):
        assert ner.find_primary("hi, are we still on for dinner?") is None

    def test_short_alias_requires_exact_token(self, ner):
        # "ee" inside a word must not match EE the operator.
        assert ner.find_primary("see you there, freee stuff") is None

    def test_find_all_returns_mentions(self, ner):
        matches = ner.find_all("Amazon and Netflix both emailed me")
        names = {m.brand for m in matches}
        assert names == {"Amazon", "Netflix"}


class TestScamTypeClassifier:
    @pytest.fixture(scope="class")
    def classifier(self):
        return ScamTypeClassifier()

    def test_banking(self, classifier):
        result = classifier.classify(
            "Your account has been locked due to unusual activity. "
            "Verify your card details now", brand="Chase",
        )
        assert result.scam_type is ScamType.BANKING

    def test_delivery(self, classifier):
        result = classifier.classify(
            "Your parcel could not be delivered, pay the customs fee",
            brand="DHL",
        )
        assert result.scam_type is ScamType.DELIVERY

    def test_government(self, classifier):
        result = classifier.classify(
            "You are eligible for a tax refund, claim before the deadline",
            brand="HMRC",
        )
        assert result.scam_type is ScamType.GOVERNMENT

    def test_telecom(self, classifier):
        result = classifier.classify(
            "your SIM will be deactivated, re-register your line",
            brand="Vodafone",
        )
        assert result.scam_type is ScamType.TELECOM

    def test_hey_mum_dad(self, classifier):
        result = classifier.classify(
            "Hi mum, I dropped my phone down the toilet, this is my new "
            "number, text me back"
        )
        assert result.scam_type is ScamType.HEY_MUM_DAD

    def test_wrong_number(self, classifier):
        result = classifier.classify(
            "Hi Anna, are we still on for dinner at 7?"
        )
        assert result.scam_type is ScamType.WRONG_NUMBER

    def test_spam(self, classifier):
        result = classifier.classify(
            "MEGA CASINO: 150 free spins waiting! Join the winners: "
            "https://spins.example.com"
        )
        assert result.scam_type is ScamType.SPAM

    def test_others_fallback(self, classifier):
        result = classifier.classify(
            "We reviewed your CV, flexible hours, apply: https://j.example.com"
        )
        assert result.scam_type is ScamType.OTHERS

    def test_brand_sector_prior(self, classifier):
        # Ambiguous wording + banking brand resolves to banking.
        result = classifier.classify(
            "Action required today: https://x.example.com",
            brand="Rabobank",
        )
        assert result.scam_type is ScamType.BANKING

    def test_spam_with_regulated_brand_demoted(self, classifier):
        result = classifier.classify(
            "Santander offer: claim your account reward now",
            brand="Santander",
        )
        assert result.scam_type is ScamType.BANKING


class TestLureDetector:
    @pytest.fixture(scope="class")
    def detector(self):
        return LureDetector()

    def test_urgency(self, detector):
        lures = detector.detect_set("act immediately, expires today")
        assert LurePrinciple.TIME_URGENCY in lures

    def test_authority(self, detector):
        lures = detector.detect_set(
            "security team notice: your account has been suspended"
        )
        assert LurePrinciple.AUTHORITY in lures

    def test_need_and_greed(self, detector):
        lures = detector.detect_set("claim your tax refund reward")
        assert LurePrinciple.NEED_AND_GREED in lures

    def test_kindness(self, detector):
        lures = detector.detect_set("hi mum can you help me")
        assert LurePrinciple.KINDNESS in lures

    def test_herd(self, detector):
        lures = detector.detect_set(
            "thousands already joined, join the winners"
        )
        assert LurePrinciple.HERD in lures

    def test_dishonesty(self, detector):
        lures = detector.detect_set(
            "quick cash, no credit check, not strictly legal"
        )
        assert LurePrinciple.DISHONESTY in lures

    def test_distraction(self, detector):
        lures = detector.detect_set("if this was not you, cancel here")
        assert LurePrinciple.DISTRACTION in lures

    def test_multi_label(self, detector):
        lures = detector.detect_set(
            "Bank alert: verify your account today or it will be suspended"
        )
        assert LurePrinciple.AUTHORITY in lures
        assert LurePrinciple.TIME_URGENCY in lures

    def test_plain_text_no_lures(self, detector):
        assert detector.detect_set("the weather is nice") == frozenset()

    def test_word_boundary_respected(self, detector):
        # "nowhere" must not trigger the "now" urgency cue.
        lures = detector.detect_set("this leads nowhere in particular")
        assert LurePrinciple.TIME_URGENCY not in lures

    def test_evidence_recorded(self, detector):
        detection = detector.detect("act now, expires today")
        assert detection.evidence[LurePrinciple.TIME_URGENCY]
