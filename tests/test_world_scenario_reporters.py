"""Tests for the reporter population and world assembly."""

import pytest

from repro.imaging.renderer import ScreenshotRenderer
from repro.types import Forum, ScamType
from repro.utils.rng import derive
from repro.world.reporters import ReporterPopulation
from repro.world.scenario import ScenarioConfig, build_world


class TestReporterPopulation:
    @pytest.fixture(scope="class")
    def output(self, world):
        # Re-generate a small batch deterministically.
        population = ReporterPopulation(
            derive(3, "rep"), ScreenshotRenderer(derive(3, "ren"))
        )
        return population.generate(world.events[:400])

    def test_twitter_dominates(self, output):
        twitter = len(output.posts_by_forum.get(Forum.TWITTER, []))
        others = sum(
            len(posts) for forum, posts in output.posts_by_forum.items()
            if forum is not Forum.TWITTER
        )
        assert twitter > others * 3

    def test_post_ids_unique(self, output):
        ids = [p.post_id for p in output.all_posts()]
        assert len(ids) == len(set(ids))

    def test_reports_linked_to_events(self, output):
        linked = [p for p in output.all_posts() if p.truth_event_id]
        assert linked

    def test_chatter_has_no_truth_link(self, output):
        chatter = [
            p for p in output.all_posts()
            if p.truth_event_id is None and not p.attachments
        ]
        assert len(chatter) >= output.chatter_count * 0.9

    def test_decoys_have_non_sms_attachments(self, output):
        from repro.imaging.screenshot import ImageKind
        decoys = [
            p for p in output.all_posts()
            if p.attachments and p.truth_event_id is None
        ]
        assert decoys
        for post in decoys:
            assert post.attachments[0].kind is not ImageKind.SMS_SCREENSHOT

    def test_report_happens_after_receipt(self, output, world):
        for post in output.all_posts():
            if post.truth_event_id:
                event = world.event(post.truth_event_id)
                assert post.created_at >= event.received_at

    def test_pastebin_posts_by_analyst(self, output):
        from repro.forums.pastebin import ANALYST_USER
        for post in output.posts_by_forum.get(Forum.PASTEBIN, []):
            assert post.author == ANALYST_USER

    def test_structured_forums_have_structured_payloads(self, output):
        for forum in (Forum.SMISHTANK, Forum.SMISHING_EU):
            for post in output.posts_by_forum.get(forum, []):
                assert post.structured
                assert post.structured.get("text")


class TestBuildWorld:
    def test_every_forum_populated(self, world):
        for forum in Forum:
            assert len(world.forums[forum]) > 0, forum

    def test_deterministic_under_seed(self):
        w1 = build_world(ScenarioConfig(seed=101, n_campaigns=10))
        w2 = build_world(ScenarioConfig(seed=101, n_campaigns=10))
        assert len(w1.events) == len(w2.events)
        assert [e.event_id for e in w1.events[:20]] == [
            e.event_id for e in w2.events[:20]
        ]
        assert w1.events[5].message.text == w2.events[5].message.text

    def test_different_seeds_differ(self):
        w1 = build_world(ScenarioConfig(seed=101, n_campaigns=10))
        w2 = build_world(ScenarioConfig(seed=202, n_campaigns=10))
        texts1 = [e.message.text for e in w1.events[:50]]
        texts2 = [e.message.text for e in w2.events[:50]]
        assert texts1 != texts2

    def test_all_scam_types_present(self, world):
        present = {e.scam_type for e in world.events}
        assert present == set(ScamType)

    def test_sbi_burst_included(self, world):
        burst = [c for c in world.campaigns if "sbi2021" in c.campaign_id]
        assert len(burst) == 1
        assert burst[0].burst_at is not None

    def test_event_lookup(self, world):
        event = world.events[0]
        assert world.event(event.event_id) is event
        assert world.event("nope") is None

    def test_service_wiring(self, world):
        # Services answer from world ground truth.
        asset = world.infrastructure.assets[0]
        assert world.crtsh is not None
        assert world.webhost is not None
        assert asset.fqdn in world.webhost

    def test_scaled_config(self):
        config = ScenarioConfig(n_campaigns=100).scaled(0.1)
        assert config.n_campaigns == 10
        assert config.seed == ScenarioConfig().seed

    def test_forum_accessors(self, world):
        assert world.twitter is world.forums[Forum.TWITTER]
        assert world.pastebin is world.forums[Forum.PASTEBIN]
