"""Unit tests for the performance observatory: profile + history layers.

Covers the percentile digest, self/cumulative hot-path attribution,
Chrome trace export, the function profiler, the run-history store, the
trend tables, and the regression-gate comparison logic.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import Telemetry
from repro.obs.history import (
    GateThresholds,
    RunHistory,
    build_run_record,
    compare_runs,
    history_table,
    previous_comparable,
    render_history,
    stage_trend_table,
)
from repro.obs.profile import (
    FunctionProfiler,
    PercentileDigest,
    build_profile,
    chrome_trace,
    function_table,
)
from repro.obs.trace import Tracer


def _fake_clock():
    """A controllable time source: returns, then advances."""
    state = {"now": 0.0}

    def advance(seconds):
        state["now"] += seconds

    return (lambda: state["now"]), advance


class TestPercentileDigest:
    def test_empty_digest_answers_none(self):
        digest = PercentileDigest()
        assert digest.count == 0
        assert digest.p50 is None and digest.p90 is None
        assert digest.min is None and digest.mean is None

    def test_single_value_is_every_quantile(self):
        digest = PercentileDigest([3.5])
        assert digest.p50 == digest.p90 == digest.p99 == 3.5

    def test_median_interpolates(self):
        digest = PercentileDigest([1.0, 2.0, 3.0, 4.0])
        assert digest.p50 == pytest.approx(2.5)

    def test_quantiles_match_known_sample(self):
        digest = PercentileDigest(range(101))  # 0..100
        assert digest.quantile(0.0) == 0
        assert digest.p50 == pytest.approx(50.0)
        assert digest.p90 == pytest.approx(90.0)
        assert digest.p99 == pytest.approx(99.0)
        assert digest.quantile(1.0) == 100

    def test_add_after_query_resorts(self):
        digest = PercentileDigest([5.0, 1.0])
        assert digest.p50 == pytest.approx(3.0)
        digest.add(0.0)
        assert digest.p50 == pytest.approx(1.0)

    def test_merge_combines_samples(self):
        left = PercentileDigest([1.0, 2.0])
        right = PercentileDigest([3.0, 4.0])
        left.merge(right)
        assert left.count == 4
        assert left.p50 == pytest.approx(2.5)

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            PercentileDigest([1.0]).quantile(1.5)


class TestBuildProfile:
    def test_self_time_excludes_direct_children(self):
        now, advance = _fake_clock()
        tracer = Tracer(time_source=now)
        parent = tracer.start("enrich")
        advance(1.0)                     # parent-only work
        child = tracer.start("enrich/urls")
        advance(3.0)                     # child work
        tracer.end(child)
        advance(0.5)                     # more parent-only work
        tracer.end(parent)

        profile = build_profile(tracer.spans)
        enrich = profile.stages["enrich"]
        urls = profile.stages["enrich/urls"]
        assert enrich.cum_seconds == pytest.approx(4.5)
        assert enrich.self_seconds == pytest.approx(1.5)
        assert urls.self_seconds == pytest.approx(3.0)
        assert profile.total_seconds == pytest.approx(4.5)

    def test_stages_aggregate_by_name(self):
        now, advance = _fake_clock()
        tracer = Tracer(time_source=now)
        for seconds in (1.0, 2.0, 3.0):
            span = tracer.start("collect/Twitter")
            advance(seconds)
            tracer.end(span)
        profile = build_profile(tracer.spans)
        stage = profile.stages["collect/Twitter"]
        assert stage.count == 3
        assert stage.cum_seconds == pytest.approx(6.0)
        assert stage.durations.p50 == pytest.approx(2.0)

    def test_throughput_off_records_attribute(self):
        now, advance = _fake_clock()
        tracer = Tracer(time_source=now)
        span = tracer.start("curate")
        span.set(records_out=300)
        advance(2.0)
        tracer.end(span)
        profile = build_profile(tracer.spans)
        assert profile.stages["curate"].records_per_sec \
            == pytest.approx(150.0)

    def test_unfinished_span_counted_not_timed(self):
        now, advance = _fake_clock()
        tracer = Tracer(time_source=now)
        parent = tracer.start("pipeline")
        tracer.start("enrich")           # never ended by its owner...
        advance(1.0)
        tracer.end(parent)               # ...pops it without a timestamp
        profile = build_profile(tracer.spans)
        enrich = profile.stages["enrich"]
        assert enrich.unfinished == 1
        assert enrich.cum_seconds == 0.0
        assert enrich.durations.count == 0
        # The unfinished row is visible in the table, not dropped.
        text = profile.table().to_text()
        assert "1 unfinished" in text

    def test_hot_paths_orders_by_self_time(self):
        now, advance = _fake_clock()
        tracer = Tracer(time_source=now)
        for name, seconds in (("fast", 1.0), ("slow", 5.0), ("mid", 2.0)):
            span = tracer.start(name)
            advance(seconds)
            tracer.end(span)
        names = [s.name for s in build_profile(tracer.spans).hot_paths()]
        assert names == ["slow", "mid", "fast"]


class TestChromeTrace:
    def _trace(self):
        now, advance = _fake_clock()
        tracer = Tracer(time_source=now)
        parent = tracer.start("pipeline")
        child = tracer.start("collect", posts_seen=10)
        advance(2.0)
        tracer.end(child)
        tracer.end(parent)
        return chrome_trace(tracer.spans)

    def test_complete_events_have_required_fields(self):
        doc = self._trace()
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(spans) == 2
        for event in spans:
            assert {"name", "cat", "ph", "pid", "tid",
                    "ts", "dur", "args"} <= set(event)

    def test_microsecond_units_and_parent_links(self):
        doc = self._trace()
        collect = next(e for e in doc["traceEvents"]
                       if e["name"] == "collect")
        assert collect["dur"] == pytest.approx(2_000_000.0)
        assert collect["args"]["parent_id"] == 1
        assert collect["args"]["posts_seen"] == 10

    def test_document_is_json_serialisable(self):
        json.dumps(self._trace())

    def test_unfinished_span_becomes_flagged_instant(self):
        now, _ = _fake_clock()
        tracer = Tracer(time_source=now)
        parent = tracer.start("pipeline")
        tracer.start("enrich")
        tracer.end(parent)
        doc = chrome_trace(tracer.spans)
        enrich = next(e for e in doc["traceEvents"]
                      if e["name"] == "enrich")
        assert enrich["dur"] == 0.0
        assert enrich["args"]["unfinished"] is True


class TestFunctionProfiler:
    def test_snapshot_reports_profiled_functions(self):
        profiler = FunctionProfiler(top=5, trace_memory=False)

        def busy():
            return sum(i * i for i in range(5000))

        with profiler:
            busy()
        snapshot = profiler.snapshot()
        assert len(snapshot["top_functions"]) <= 5
        assert snapshot["top_functions"], "no functions recorded"
        row = snapshot["top_functions"][0]
        assert {"function", "calls", "self_seconds",
                "cum_seconds"} <= set(row)
        assert snapshot["memory_peak_bytes"] is None

    def test_memory_peak_captured_when_enabled(self):
        profiler = FunctionProfiler(trace_memory=True)
        with profiler:
            blob = [bytes(1024) for _ in range(100)]
            del blob
        assert profiler.snapshot()["memory_peak_bytes"] > 0

    def test_table_renders_peak_note(self):
        profiler = FunctionProfiler(trace_memory=True)
        with profiler:
            sum(range(1000))
        text = function_table(profiler.snapshot()).to_text()
        assert "Function hot spots" in text
        assert "tracemalloc peak" in text

    def test_rejects_nonpositive_top(self):
        with pytest.raises(ValueError):
            FunctionProfiler(top=0)


def _telemetry_with_spans(*stage_seconds, charged=None, hit_rate=0.5):
    """A minimal telemetry carrying synthetic spans + snapshots."""
    now, advance = _fake_clock()
    telemetry = Telemetry(tracer=Tracer(time_source=now))
    for name, seconds in stage_seconds:
        span = telemetry.tracer.start(name)
        advance(seconds)
        telemetry.tracer.end(span)
    for service, used in (charged or {}).items():
        telemetry.meter_snapshots[service] = {"used": used, "remaining": 10}
    telemetry.cache_snapshot = {
        "totals": {"hits": 10, "misses": 10},
        "hit_rate": hit_rate,
    }
    return telemetry


def _record(tmp_path=None, *, command="stats", config=None, stages=(),
            charged=None, hit_rate=0.5, counts=None):
    telemetry = _telemetry_with_spans(*stages, charged=charged,
                                      hit_rate=hit_rate)
    return build_run_record(
        command=command,
        config=config or {"seed": 7, "workers": 1},
        telemetry=telemetry,
        counts=counts or {"records": 100, "gaps": 2},
    )


class TestRunRecord:
    def test_record_shape(self):
        record = _record(stages=[("pipeline", 2.0), ("enrich", 1.5)],
                         charged={"whois": 22, "gsb": 62})
        assert record["command"] == "stats"
        # Both spans are roots, so total wall is their sum.
        assert record["wall_seconds"] == pytest.approx(3.5)
        assert set(record["stages"]) == {"pipeline", "enrich"}
        assert record["charged_total"] == 84
        assert record["cache"]["hit_rate"] == 0.5
        assert record["counts"]["records"] == 100
        json.dumps(record)  # must be a plain JSON document

    def test_config_digest_distinguishes_configs(self):
        one = _record(config={"seed": 7, "workers": 1})
        four = _record(config={"seed": 7, "workers": 4})
        same = _record(config={"seed": 7, "workers": 1})
        assert one["config_digest"] == same["config_digest"]
        assert one["config_digest"] != four["config_digest"]


class TestRunHistory:
    def test_append_assigns_monotonic_sequence(self, tmp_path):
        history = RunHistory(tmp_path)
        first = history.append(_record())
        second = history.append(_record())
        assert first["sequence"] == 0
        assert second["sequence"] == 1
        assert [r["sequence"] for r in history.load()] == [0, 1]

    def test_latest_returns_newest(self, tmp_path):
        history = RunHistory(tmp_path)
        assert history.latest() is None
        history.append(_record())
        history.append(_record(command="report"))
        assert history.latest()["command"] == "report"

    def test_torn_tail_is_tolerated(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(_record())
        with open(history.path, "a", encoding="utf-8") as handle:
            handle.write('{"sequence": 1, "torn...')
        assert len(history.load()) == 1
        # And appending afterwards continues cleanly.
        stored = history.append(_record())
        assert stored["sequence"] == 1

    def test_previous_comparable_matches_config_digest(self, tmp_path):
        history = RunHistory(tmp_path)
        a = history.append(_record(config={"seed": 7, "workers": 1}))
        history.append(_record(config={"seed": 7, "workers": 4}))
        c = history.append(_record(config={"seed": 7, "workers": 1}))
        records = history.load()
        previous = previous_comparable(records, records[-1])
        assert previous["sequence"] == a["sequence"]
        assert c["config_digest"] == previous["config_digest"]

    def test_previous_comparable_none_for_first_of_kind(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(_record(config={"seed": 1}))
        history.append(_record(config={"seed": 2}))
        records = history.load()
        assert previous_comparable(records, records[-1]) is None


class TestHistoryRendering:
    def test_history_table_has_delta_columns(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(_record(stages=[("pipeline", 1.0)]))
        history.append(_record(stages=[("pipeline", 3.0)]))
        text = history_table(history.load()).to_text()
        assert "Δ wall (s)" in text and "Δ charged" in text
        assert "+2" in text  # the wall delta of run 1 vs run 0

    def test_stage_trend_table_shows_cum_delta(self):
        current = _record(stages=[("enrich", 3.0)])
        current["sequence"] = 1
        previous = _record(stages=[("enrich", 1.0)])
        previous["sequence"] = 0
        text = stage_trend_table(current, previous).to_text()
        assert "run 1 vs run 0" in text
        assert "+2" in text

    def test_render_history_empty(self):
        assert "empty" in render_history([])

    def test_render_history_combines_tables(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(_record(stages=[("pipeline", 1.0)]))
        text = render_history(history.load())
        assert "Run history" in text and "Stage trends" in text


class TestCompareRuns:
    def _pair(self, **current_kwargs):
        baseline = _record(stages=[("enrich", 1.0)],
                           charged={"whois": 22}, hit_rate=0.6)
        current = _record(**{"stages": [("enrich", 1.0)],
                             "charged": {"whois": 22},
                             "hit_rate": 0.6, **current_kwargs})
        return current, baseline

    def test_identical_runs_pass(self):
        current, baseline = self._pair()
        assert compare_runs(current, baseline) == []

    def test_stage_slowdown_detected(self):
        current, baseline = self._pair(stages=[("enrich", 2.0)])
        findings = compare_runs(current, baseline)
        assert any("slowed 2.00x" in f for f in findings)

    def test_sub_floor_stage_noise_ignored(self):
        baseline = _record(stages=[("tiny", 0.001)])
        current = _record(stages=[("tiny", 0.004)])  # 4x but microscopic
        assert compare_runs(current, baseline) == []

    def test_charged_increase_detected_exactly(self):
        current, baseline = self._pair(charged={"whois": 23})
        findings = compare_runs(current, baseline)
        assert any("whois grew 22 -> 23" in f for f in findings)
        assert any("total charged calls grew" in f for f in findings)

    def test_charged_increase_within_allowance_passes(self):
        current, baseline = self._pair(charged={"whois": 23})
        thresholds = GateThresholds(max_charged_increase=5)
        assert compare_runs(current, baseline, thresholds) == []

    def test_hit_rate_drop_detected(self):
        current, baseline = self._pair(hit_rate=0.2)
        findings = compare_runs(current, baseline)
        assert any("hit rate dropped" in f for f in findings)

    def test_config_drift_short_circuits(self):
        baseline = _record(config={"seed": 7})
        current = _record(config={"seed": 8}, charged={"whois": 99})
        findings = compare_runs(current, baseline)
        assert len(findings) == 1
        assert "config drift" in findings[0]

    def test_config_drift_can_be_waived(self):
        baseline = _record(config={"seed": 7})
        current = _record(config={"seed": 8})
        assert compare_runs(current, baseline, check_config=False) == []

    def test_new_stage_flagged_when_significant(self):
        baseline = _record(stages=[("enrich", 1.0)])
        current = _record(stages=[("enrich", 1.0), ("mystery", 0.5)])
        findings = compare_runs(current, baseline)
        assert any("new stage mystery" in f for f in findings)

    def _serve_pair(self, **overrides):
        serve = {"submitted": 800, "processed": 123, "shed": 677,
                 "p50_latency": 70.0, "p99_latency": 100.0,
                 "max_queue_depth": 21}
        current, baseline = self._pair()
        baseline["serve"] = dict(serve)
        current["serve"] = {**serve, **overrides}
        return current, baseline

    def test_identical_serve_runs_pass(self):
        current, baseline = self._serve_pair()
        assert compare_runs(current, baseline) == []

    def test_serve_p99_growth_detected(self):
        current, baseline = self._serve_pair(p99_latency=140.0)
        findings = compare_runs(current, baseline)
        assert any("serve p99 intake latency grew 1.40x" in f
                   for f in findings)

    def test_serve_p99_growth_within_factor_passes(self):
        current, baseline = self._serve_pair(p99_latency=120.0)  # 1.2x
        assert compare_runs(current, baseline) == []

    def test_serve_throughput_drop_detected(self):
        current, baseline = self._serve_pair(processed=100)
        findings = compare_runs(current, baseline)
        assert any("serve throughput dropped" in f for f in findings)

    def test_serve_block_absent_is_not_compared(self):
        current, baseline = self._serve_pair(p99_latency=500.0)
        del baseline["serve"]
        assert compare_runs(current, baseline) == []


class TestPerfGateScript:
    """End-to-end: the CI gate script over real history artifacts."""

    SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / \
        "perf_gate.py"

    def _gate(self, *argv):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *argv],
            capture_output=True, text=True)

    def test_pin_then_pass_then_tamper(self, tmp_path):
        history = RunHistory(tmp_path)
        history.append(_record(stages=[("enrich", 1.0)],
                               charged={"whois": 22}))
        baseline = tmp_path / "BASELINE.json"

        pinned = self._gate("--history-dir", str(tmp_path),
                            "--baseline", str(baseline),
                            "--update-baseline")
        assert pinned.returncode == 0, pinned.stderr
        assert baseline.is_file()

        passed = self._gate("--history-dir", str(tmp_path),
                            "--baseline", str(baseline))
        assert passed.returncode == 0, passed.stdout + passed.stderr
        assert "no regressions" in passed.stdout

        doc = json.loads(baseline.read_text())
        doc["charged"] = {"whois": 0}
        doc["charged_total"] = 0
        baseline.write_text(json.dumps(doc))
        failed = self._gate("--history-dir", str(tmp_path),
                            "--baseline", str(baseline))
        assert failed.returncode == 1
        assert "charged calls" in failed.stdout

    def test_missing_history_is_usage_error(self, tmp_path):
        result = self._gate("--history-dir", str(tmp_path),
                            "--baseline", str(tmp_path / "B.json"))
        assert result.returncode != 0
        assert "no run history" in result.stderr
