"""Tests for screenshots, rendering and the three extraction back-ends."""

import datetime as dt

import pytest

from repro.errors import ExtractionError
from repro.imaging.ocr import PytesseractOcr
from repro.imaging.renderer import ScreenshotRenderer
from repro.imaging.screenshot import (
    AppSkin,
    ImageKind,
    Screenshot,
    TextLine,
    redact,
    word_wrap,
)
from repro.imaging.vision_google import GoogleVisionOcr
from repro.imaging.vision_openai import (
    OpenAiVisionExtractor,
    VISION_PROMPT,
    VisionExtraction,
)
from repro.sms.message import SmishingEvent, SmsMessage
from repro.sms.senderid import classify_sender_id
from repro.types import LurePrinciple, ScamType
from repro.utils.rng import derive


def make_event(text="Your ACME account is locked. Visit "
                    "https://acme-verify.com/login now",
               sender="+447700900123", language="en"):
    message = SmsMessage(
        text=text,
        sender=classify_sender_id(sender),
        received_at=dt.datetime(2022, 5, 10, 14, 30),
        recipient_country="GBR",
        url=None,
    )
    return SmishingEvent(
        event_id="ev-test", message=message, campaign_id="c0",
        scam_type=ScamType.BANKING, language=language, brand="ACME",
        lures=frozenset({LurePrinciple.AUTHORITY}),
    )


@pytest.fixture()
def renderer(rng):
    return ScreenshotRenderer(derive(9, "render-test"))


class TestWordWrap:
    def test_short_text_single_row(self):
        assert word_wrap("hello", 20) == [("hello", False)]

    def test_soft_wrap_not_continuation(self):
        rows = word_wrap("one two three four five six seven", 12)
        assert len(rows) > 1
        assert all(not cont for _, cont in rows)

    def test_long_token_hard_split(self):
        url = "https://example.com/very-long-path-indeed-here"
        rows = word_wrap(f"visit {url}", 20)
        continuations = [row for row, cont in rows if cont]
        assert continuations
        # Re-joining continuations reconstructs the URL.
        rebuilt = ""
        for row, cont in rows:
            rebuilt = rebuilt + row if cont else (rebuilt + " " + row).strip()
        assert url in rebuilt

    def test_width_respected(self):
        for row, _ in word_wrap("word " * 50, 18):
            assert len(row) <= 18

    def test_tiny_width_rejected(self):
        with pytest.raises(ValueError):
            word_wrap("text", 3)

    def test_newlines_preserved_as_breaks(self):
        rows = word_wrap("line one\nline two", 40)
        assert len(rows) == 2


class TestRedact:
    def test_keeps_prefix(self):
        assert redact("+447700900123") == "+44" + "*" * 10

    def test_short_string_fully_masked(self):
        assert redact("ab") == "**"


class TestRenderer:
    def test_renders_sms_screenshot(self, renderer):
        shot = renderer.render_event(make_event())
        assert shot.kind is ImageKind.SMS_SCREENSHOT
        assert shot.header_line is not None
        assert shot.timestamp_line is not None
        assert shot.body_lines

    def test_truth_fields_populated(self, renderer):
        event = make_event()
        shot = renderer.render_event(event)
        assert shot.truth_event_id == event.event_id
        assert shot.truth_text == event.message.text

    def test_sender_redaction(self, renderer):
        shot = renderer.render_event(make_event(), redact_sender=True)
        assert shot.sender_redacted
        assert "*" in shot.header_line.text

    def test_image_ids_unique(self, renderer):
        ids = {renderer.render_event(make_event()).image_id
               for _ in range(50)}
        assert len(ids) == 50

    def test_decoys_are_not_sms(self, renderer):
        for _ in range(20):
            decoy = renderer.render_decoy()
            assert decoy.kind is not ImageKind.SMS_SCREENSHOT


class TestPytesseract:
    def test_fails_on_empty_photo(self, renderer, rng):
        ocr = PytesseractOcr(rng)
        with pytest.raises(ExtractionError):
            ocr.image_to_text(renderer.render_unrelated_photo())

    def test_reads_plain_theme(self, rng):
        shot = Screenshot(
            image_id="i1", kind=ImageKind.SMS_SCREENSHOT,
            skin=AppSkin.IOS_MESSAGES,
            lines=[TextLine("hello world", "body")],
        )
        ocr = PytesseractOcr(rng, confusion_rate=0.0)
        result = ocr.image_to_text(shot)
        assert "hello world" in result.text

    def test_custom_theme_often_fails(self, rng):
        shot = Screenshot(
            image_id="i1", kind=ImageKind.SMS_SCREENSHOT,
            skin=AppSkin.CUSTOM_THEMED,
            lines=[TextLine("hello", "body")],
        )
        ocr = PytesseractOcr(rng, theme_failure_rate=1.0)
        with pytest.raises(ExtractionError):
            ocr.image_to_text(shot)
        assert ocr.failure_rate == 1.0

    def test_glyph_confusion_applied(self, rng):
        shot = Screenshot(
            image_id="i1", kind=ImageKind.SMS_SCREENSHOT,
            skin=AppSkin.IOS_MESSAGES,
            lines=[TextLine("l" * 60, "body")],
        )
        ocr = PytesseractOcr(rng, confusion_rate=0.8)
        result = ocr.image_to_text(shot)
        assert "I" in result.text  # l confused with I (§3.2)

    def test_reads_email_screenshots_indiscriminately(self, renderer, rng):
        # Plain OCR cannot tell what an image is (§3.2).
        ocr = PytesseractOcr(rng, confusion_rate=0.0, theme_failure_rate=0.0)
        result = ocr.image_to_text(renderer.render_email_screenshot())
        assert result.text


class TestGoogleVision:
    def test_accurate_characters(self, renderer):
        shot = renderer.render_event(make_event())
        vision = GoogleVisionOcr(derive(2, "gv"), reorder_rate=0.0)
        result = vision.annotate(shot)
        # With no reordering, all body text present verbatim.
        assert "locked" in result.full_text

    def test_reordering_breaks_wrapped_urls(self):
        event = make_event(
            text="Pay here https://extremely-long-domain-name-example.com/"
                 "path/that/wraps/lines/for/sure now"
        )
        renderer = ScreenshotRenderer(derive(4, "gvr"), width_chars=24)
        shot = renderer.render_event(event, redact_sender=False,
                                     redact_url=False)
        vision = GoogleVisionOcr(derive(4, "gv2"), reorder_rate=1.0)
        result = vision.annotate(shot)
        from repro.net.url import extract_urls
        urls = extract_urls(result.full_text.replace("\n", " "))
        full = [u for u in urls
                if "/path/that/wraps/lines/for/sure" in u.path]
        assert not full  # URL truncated by reading-order loss (§3.2)

    def test_raises_on_textless_image(self, renderer):
        vision = GoogleVisionOcr(derive(5, "gv3"))
        with pytest.raises(ExtractionError):
            vision.annotate(renderer.render_unrelated_photo())


class TestOpenAiVision:
    @pytest.fixture()
    def extractor(self):
        return OpenAiVisionExtractor(derive(6, "oai"), miss_rate=0.0)

    def test_extracts_all_fields(self, renderer, extractor):
        event = make_event()
        shot = renderer.render_event(event, redact_sender=False,
                                     redact_url=False)
        result = extractor.extract(shot)
        assert not result.dismissed
        assert "locked" in result.text
        assert result.sender_id == event.sender.raw
        assert result.timestamp

    def test_rejoins_wrapped_urls(self, extractor):
        url = ("https://extremely-long-domain-name-example.com/"
               "path/that/wraps/lines")
        event = make_event(text=f"Pay here {url} now")
        renderer = ScreenshotRenderer(derive(8, "oair"), width_chars=24)
        shot = renderer.render_event(event, redact_sender=False,
                                     redact_url=False)
        result = extractor.extract(shot)
        assert url in result.text
        assert result.url == url

    def test_dismisses_posters(self, renderer, extractor):
        result = extractor.extract(renderer.render_awareness_poster())
        assert result.dismissed
        assert extractor.dismissal_rate > 0

    def test_dismisses_email_screenshots(self, renderer, extractor):
        assert extractor.extract(renderer.render_email_screenshot()).dismissed

    def test_redacted_sender_left_empty(self, renderer, extractor):
        shot = renderer.render_event(make_event(), redact_sender=True)
        assert extractor.extract(shot).sender_id == ""

    def test_json_round_trip(self):
        extraction = VisionExtraction(
            timestamp="Today 10:00", text="hi", url="", sender_id="7726"
        )
        parsed = VisionExtraction.from_json(extraction.to_json())
        assert parsed.text == "hi"
        assert parsed.sender_id == "7726"
        assert not parsed.dismissed

    def test_dismissed_json_is_empty_object(self):
        extraction = VisionExtraction("", "", "", "", dismissed=True)
        parsed = VisionExtraction.from_json(extraction.to_json())
        assert parsed.dismissed

    def test_prompt_is_appendix_d1(self):
        assert "screenshot" in VISION_PROMPT
        assert "sender-id" in VISION_PROMPT
