"""The stream subsystem's headline guarantee, proven differentially.

An N-epoch incremental ingest must end where a single full-window batch
run ends: same annotated rows, same gap/limitation accounting, same
paper report — compared via :func:`tests.fingerprints.canonical_fingerprint`,
which cancels the two legitimate differences (per-epoch record
numbering and the stream-only ``epoch`` stamps) — and it must get there
*cheaper*: per-service charged-call totals never exceed the batch run's.

The grid: 2 seeds × {none, flaky} fault profiles × workers {1, 4}.
Under ``none`` the incremental run uses N=3 epochs. Under ``flaky`` the
batch comparison runs at N=1: fault proxies count calls per *run*, so
an epoch boundary resets the fault schedule's call indices and an N>1
flaky stream is a differently-faulted (though still deterministic —
also proven here) execution, not a batch-identical one.
"""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.exec import ExecutionPolicy
from repro.faults import build_fault_plan
from repro.obs import Telemetry
from repro.stream import StreamSession
from repro.world.scenario import ScenarioConfig, build_world

from tests.fingerprints import (
    canonical_fingerprint,
    charged_calls_from_services,
    charged_calls_from_telemetry,
)

SEEDS = (11, 29)
WORKERS = (1, 4)
_CAMPAIGNS = 6
#: Epochs per profile: see the module docstring for why flaky pins N=1.
_EPOCHS = {"none": 3, "flaky": 1}


def _batch(seed: int, profile: str):
    """One full-window batch run plus its charged-call totals."""
    world = build_world(ScenarioConfig(seed=seed, n_campaigns=_CAMPAIGNS))
    telemetry = Telemetry.create(clock=world.clock)
    run = run_pipeline(
        world,
        config=PipelineConfig(stable_vision=True),
        telemetry=telemetry,
        fault_plan=build_fault_plan(profile, seed=seed),
    )
    return run, charged_calls_from_telemetry(telemetry)


def _stream(seed: int, profile: str, workers: int, epochs: int):
    """One N-epoch stream session plus its charged-call totals."""
    session = StreamSession.create(
        ScenarioConfig(seed=seed, n_campaigns=_CAMPAIGNS),
        epochs=epochs,
        fault_plan=build_fault_plan(profile, seed=seed),
        execution=ExecutionPolicy(workers=workers),
    )
    state = session.run()
    return session, state, charged_calls_from_services(session.services)


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("profile", ("none", "flaky"))
@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_matches_batch(seed, profile, workers):
    epochs = _EPOCHS[profile]
    run, batch_charges = _batch(seed, profile)
    session, state, stream_charges = _stream(seed, profile, workers, epochs)

    stream_run = state.as_pipeline_run(session.world, session.config)
    assert canonical_fingerprint(stream_run) == canonical_fingerprint(run), (
        f"seed={seed} faults={profile} workers={workers} epochs={epochs}: "
        "incremental result diverged from the batch run"
    )

    # The stream must never pay more than the batch, for any service.
    for service, charged in stream_charges.items():
        assert charged <= batch_charges[service], (
            f"seed={seed} faults={profile} workers={workers}: stream "
            f"charged {charged} {service} calls vs batch "
            f"{batch_charges[service]}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_none_profile_charges_match_batch_except_annotation(seed):
    """Without faults, the stream replays the batch's exact url/sender
    call sequence; only annotation (openai) gets cheaper, because the
    dedup ledger keeps duplicate records out of the enrichment delta."""
    _, batch_charges = _batch(seed, "none")
    _, state, stream_charges = _stream(seed, "none", 1, _EPOCHS["none"])
    for service, charged in stream_charges.items():
        if service == "openai":
            assert charged < batch_charges[service]
        else:
            assert charged == batch_charges[service], (
                f"seed={seed}: {service} charged {charged} vs batch "
                f"{batch_charges[service]}"
            )
    total_deduped = sum(s.deduped for s in state.epoch_stats)
    assert total_deduped > 0
    assert (batch_charges["openai"] - stream_charges["openai"]
            == total_deduped)


@pytest.mark.parametrize("profile", ("none", "flaky"))
@pytest.mark.parametrize("seed", SEEDS)
def test_worker_count_invisible_stream_vs_stream(seed, profile):
    """Workers 1 vs 4 must agree byte-for-byte — record ids, epoch
    stamps and all — not just canonically."""
    _, state1, charges1 = _stream(seed, profile, 1, 3)
    _, state4, charges4 = _stream(seed, profile, 4, 3)
    assert state1.fingerprint() == state4.fingerprint(), (
        f"seed={seed} faults={profile}: worker count changed the stream"
    )
    assert charges1 == charges4


def test_flaky_multi_epoch_stream_is_deterministic():
    """N>1 under faults is not batch-identical (per-epoch fault call
    indices), but two identical sessions must still agree exactly."""
    _, first, charges_a = _stream(11, "flaky", 1, 3)
    _, second, charges_b = _stream(11, "flaky", 1, 3)
    assert first.fingerprint() == second.fingerprint()
    assert charges_a == charges_b
