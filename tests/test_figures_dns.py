"""Tests for figure exports and the DNS substrate."""

import datetime as dt

import pytest

from repro.analysis.figures import (
    export_all_figures,
    figure2_median_series,
    figure2_series,
    figure3_series,
    yearly_volume_series,
)
from repro.errors import NotFound
from repro.net.dns import DnsRecord, DnsResolver, DnsZoneDatabase
from repro.net.ipaddr import IPv4


class TestFigureSeries:
    def test_figure2_long_format(self, enriched):
        data = figure2_series(enriched)
        assert data.columns == ("weekday", "second_of_day")
        assert len(data.rows) > 100
        for weekday, second in data.rows:
            assert weekday in ("Monday", "Tuesday", "Wednesday", "Thursday",
                               "Friday", "Saturday", "Sunday")
            assert 0 <= second < 86400

    def test_figure2_medians(self, enriched):
        data = figure2_median_series(enriched)
        assert len(data.rows) == 7

    def test_figure3_percentages(self, enriched):
        data = figure3_series(enriched)
        by_country = data.series(0)
        for country, rows in by_country.items():
            total = sum(row[2] for row in rows)
            assert total == pytest.approx(100.0, abs=1.0)

    def test_yearly_series_sorted(self, pipeline_run):
        data = yearly_volume_series(pipeline_run.collection.reports)
        years = [row[0] for row in data.rows]
        assert years == sorted(years)

    def test_csv_round_trip(self, enriched, tmp_path):
        data = figure2_median_series(enriched)
        path = tmp_path / "f2.csv"
        written = data.save_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == written + 1  # header
        assert lines[0] == "weekday,messages,median_send_time"

    def test_export_all(self, enriched, pipeline_run, tmp_path):
        written = export_all_figures(
            enriched, pipeline_run.collection.reports, tmp_path / "figs"
        )
        assert set(written) == {"figure2", "figure2-medians", "figure3",
                                "twitter-yearly"}
        for name in written:
            assert (tmp_path / "figs" / f"{name}.csv").exists()


def _zone(lifetime_days=10):
    zones = DnsZoneDatabase()
    zones.add_record(DnsRecord(
        name="evil.example.com",
        address=IPv4.parse("192.0.2.10"),
        valid_from=dt.date(2022, 1, 1),
        valid_until=dt.date(2022, 1, 1) + dt.timedelta(days=lifetime_days),
    ))
    return zones


class TestDnsZones:
    def test_records_case_insensitive(self):
        zones = _zone()
        assert "EVIL.example.COM" in zones
        assert zones.records_for("evil.example.com.")

    def test_from_assets(self, world):
        zones = DnsZoneDatabase.from_assets(world.infrastructure.assets)
        assert len(zones) == len(world.infrastructure.assets)
        asset = world.infrastructure.assets[0]
        records = zones.records_for(asset.fqdn)
        assert {r.address for r in records} == set(asset.hosting.addresses)

    def test_proxied_assets_resolve_to_proxy(self, world):
        zones = DnsZoneDatabase.from_assets(world.infrastructure.assets)
        proxied = [a for a in world.infrastructure.assets
                   if a.hosting.proxy_asn is not None]
        if not proxied:
            pytest.skip("no proxied assets in this draw")
        asset = proxied[0]
        for record in zones.records_for(asset.fqdn):
            # Addresses were allocated from the proxy AS, not the origin.
            assert world.as_registry.lookup(record.address).asn == \
                asset.hosting.proxy_asn


class TestDnsResolver:
    def test_resolves_live_name(self):
        resolver = DnsResolver(_zone())
        result = resolver.resolve("evil.example.com", dt.date(2022, 1, 5))
        assert result.resolved
        assert str(result.addresses[0]) == "192.0.2.10"

    def test_nxdomain_after_takedown(self):
        resolver = DnsResolver(_zone(lifetime_days=3))
        with pytest.raises(NotFound):
            resolver.resolve("evil.example.com", dt.date(2022, 2, 1))

    def test_unknown_name_nxdomain(self):
        resolver = DnsResolver(_zone())
        with pytest.raises(NotFound):
            resolver.resolve("nope.example.org", dt.date(2022, 1, 5))

    def test_cache_hit(self):
        resolver = DnsResolver(_zone())
        first = resolver.resolve("evil.example.com", dt.date(2022, 1, 5))
        second = resolver.resolve("evil.example.com", dt.date(2022, 1, 5))
        assert not first.from_cache
        assert second.from_cache
        assert resolver.cache_hit_rate == 0.5

    def test_negative_answers_cached(self):
        resolver = DnsResolver(_zone())
        for _ in range(2):
            with pytest.raises(NotFound):
                resolver.resolve("gone.example.com", dt.date(2022, 1, 5))
        assert resolver.cache_hits == 1

    def test_cache_expires_by_queries(self):
        resolver = DnsResolver(_zone(), ttl_queries=1)
        resolver.resolve("evil.example.com", dt.date(2022, 1, 5))
        resolver.resolve("evil.example.com", dt.date(2022, 1, 6))
        third = resolver.resolve("evil.example.com", dt.date(2022, 1, 5))
        assert not third.from_cache  # expired after ttl_queries lookups
