"""Tests for the screenshot timestamp parser."""

import datetime as dt

import pytest

from repro.errors import ParseError
from repro.utils.timeutils import (
    DATELESS_STYLES,
    TIMESTAMP_STYLES,
    format_app_timestamp,
    parse_screenshot_timestamp,
)

REF = dt.date(2021, 8, 3)


class TestIsoFormat:
    def test_full_iso(self):
        result = parse_screenshot_timestamp("2021-08-03 11:34")
        assert result.value == dt.datetime(2021, 8, 3, 11, 34)
        assert result.has_date and result.has_time

    def test_iso_with_seconds(self):
        result = parse_screenshot_timestamp("2021-08-03 11:34:56")
        assert result.value.second == 56


class TestNumericFormats:
    def test_day_first(self):
        result = parse_screenshot_timestamp("03/08/2021 11:34", day_first=True)
        assert result.value.month == 8
        assert result.value.day == 3

    def test_month_first(self):
        result = parse_screenshot_timestamp("8/3/21, 11:34 AM", day_first=False)
        assert result.value.month == 8
        assert result.value.day == 3

    def test_two_digit_year(self):
        result = parse_screenshot_timestamp("03/08/21 09:00")
        assert result.value.year == 2021

    def test_impossible_month_swaps(self):
        # 25/03 cannot be month 25 even with month-first hint.
        result = parse_screenshot_timestamp("25/03/2021 10:00", day_first=False)
        assert result.value.day == 25
        assert result.value.month == 3

    def test_pm_conversion(self):
        result = parse_screenshot_timestamp("8/3/21, 1:05 PM", day_first=False)
        assert result.value.hour == 13

    def test_midnight_am(self):
        result = parse_screenshot_timestamp("8/3/21, 12:05 AM", day_first=False)
        assert result.value.hour == 0


class TestLongFormat:
    def test_english_long(self):
        result = parse_screenshot_timestamp("Tue, Aug 3, 11:34 AM",
                                            reference=REF)
        assert result.value == dt.datetime(2021, 8, 3, 11, 34)

    def test_day_month_order(self):
        result = parse_screenshot_timestamp("3 August 2021 11:34")
        assert result.value.date() == dt.date(2021, 8, 3)

    def test_localized_dutch_month(self):
        result = parse_screenshot_timestamp("3 augustus 2021 11:34")
        assert result.value.month == 8

    def test_localized_spanish_month(self):
        result = parse_screenshot_timestamp("3 agosto 2021 11:34")
        assert result.value.month == 8

    def test_localized_french_month(self):
        result = parse_screenshot_timestamp("3 aout 2021 11:34")
        assert result.value.month == 8

    def test_yearless_uses_reference(self):
        result = parse_screenshot_timestamp("Aug 3, 11:34 AM", reference=REF)
        assert result.value.year == 2021


class TestTimeOnlyAndRelative:
    def test_time_only_has_no_date(self):
        result = parse_screenshot_timestamp("11:34", reference=REF)
        assert result.has_time
        assert not result.has_date
        assert result.weekday_name is None

    def test_today(self):
        result = parse_screenshot_timestamp("Today 11:34", reference=REF)
        assert result.value.date() == REF
        assert result.has_date

    def test_yesterday(self):
        result = parse_screenshot_timestamp("Yesterday 23:59", reference=REF)
        assert result.value.date() == REF - dt.timedelta(days=1)

    def test_localized_yesterday(self):
        result = parse_screenshot_timestamp("gisteren 10:00", reference=REF)
        assert result.value.date() == REF - dt.timedelta(days=1)


class TestErrors:
    def test_empty_raises(self):
        with pytest.raises(ParseError):
            parse_screenshot_timestamp("")

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_screenshot_timestamp("not a timestamp at all")

    def test_bad_time_values_rejected(self):
        with pytest.raises(ParseError):
            parse_screenshot_timestamp("25:99")


class TestRoundTrip:
    @pytest.mark.parametrize("style", TIMESTAMP_STYLES)
    def test_every_style_parses_back(self, style):
        moment = dt.datetime(2022, 3, 14, 15, 9, 0)
        rendered = format_app_timestamp(moment, style)
        parsed = parse_screenshot_timestamp(
            rendered, reference=moment.date(),
            day_first=(style != "numeric_monthfirst"),
        )
        assert parsed.value.hour == moment.hour
        assert parsed.value.minute == moment.minute
        if style not in DATELESS_STYLES:
            assert parsed.value.date() == moment.date()

    def test_unknown_style_raises(self):
        with pytest.raises(ValueError):
            format_app_timestamp(dt.datetime(2022, 1, 1), "nope")
