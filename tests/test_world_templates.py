"""Tests for the smishing template library."""

import pytest

from repro.types import LurePrinciple, ScamType
from repro.world.templates import TemplateLibrary, default_templates


@pytest.fixture(scope="module")
def library():
    return default_templates()

SLOTS = {
    "brand": "TestBank", "url": "https://x.com/a", "name": "Anna",
    "amount": "100", "currency": "$", "code": "123456",
    "tracking": "AB123456789", "phone": "+1555",
}


class TestCoverage:
    @pytest.mark.parametrize("scam_type", list(ScamType))
    def test_english_templates_exist(self, library, scam_type):
        assert library.templates(scam_type, "en")

    @pytest.mark.parametrize("lang", ["en", "es", "nl", "fr", "de", "it",
                                      "id", "pt", "ja", "hi"])
    def test_banking_covered_in_major_languages(self, library, lang):
        templates = library.templates(ScamType.BANKING, lang)
        assert templates
        assert all(t.language == lang for t in templates)

    def test_fallback_language_has_templates(self, library):
        templates = library.templates(ScamType.BANKING, "pl")
        assert templates
        assert templates[0].language == "pl"

    def test_unknown_pair_falls_back_to_english(self, library):
        # Hey mum/dad has no Polish coverage; falls back to English.
        templates = library.templates(ScamType.HEY_MUM_DAD, "pl")
        assert all(t.language == "en" for t in templates)

    def test_languages_for_banking_is_broad(self, library):
        assert len(library.languages_for(ScamType.BANKING)) >= 40


class TestRendering:
    def test_render_fills_slots(self, library, rng):
        template = library.pick(ScamType.BANKING, "en", rng)
        text = template.render(SLOTS)
        assert "{" not in text

    def test_all_templates_render(self, library):
        for template in library.all_templates():
            text = template.render(SLOTS)
            assert text.strip()

    def test_conversation_templates_carry_no_url(self, library):
        for lang in ("en", "es", "de"):
            for template in library.templates(ScamType.HEY_MUM_DAD, lang):
                assert not template.needs_url

    def test_url_templates_place_url(self, library):
        for template in library.templates(ScamType.BANKING, "en"):
            if template.needs_url:
                assert "{url}" in template.text


class TestLureGroundTruth:
    def test_every_template_has_lures(self, library):
        for template in library.all_templates():
            assert template.lures

    def test_hey_mum_dad_uses_kindness(self, library):
        for template in library.templates(ScamType.HEY_MUM_DAD, "en"):
            assert LurePrinciple.KINDNESS in template.lures

    def test_banking_uses_authority_and_urgency(self, library):
        templates = library.templates(ScamType.BANKING, "en")
        assert any(LurePrinciple.AUTHORITY in t.lures for t in templates)
        assert any(LurePrinciple.TIME_URGENCY in t.lures for t in templates)

    def test_dishonesty_is_rare(self, library):
        # §5.5: dishonesty is the least-used lure (0.5% of messages).
        dishonest = [t for t in library.all_templates()
                     if LurePrinciple.DISHONESTY in t.lures]
        assert 0 < len(dishonest) <= 3

    def test_non_english_templates_carry_gloss(self, library):
        for template in library.all_templates():
            if template.language != "en":
                assert template.english_gloss
