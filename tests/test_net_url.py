"""Tests for URL parsing, extraction and defanging."""

import pytest

from repro.errors import ValidationError
from repro.net.url import (
    RedirectChain,
    Url,
    defang,
    extract_urls,
    join_wrapped_url,
    parse_url,
    refang,
    try_parse_url,
)


class TestParseUrl:
    def test_full_https(self):
        url = parse_url("https://example.com/login?x=1")
        assert url.scheme == "https"
        assert url.host == "example.com"
        assert url.path == "/login"
        assert url.query == "x=1"

    def test_scheme_defaults_to_http(self):
        assert parse_url("example.com/track").scheme == "http"

    def test_host_lowercased(self):
        assert parse_url("HTTPS://EXAMPLE.COM").host == "example.com"

    def test_port(self):
        assert parse_url("http://example.com:8080/x").port == 8080

    def test_bad_port_raises(self):
        with pytest.raises(ValidationError):
            parse_url("http://example.com:abc/")

    def test_port_out_of_range(self):
        with pytest.raises(ValidationError):
            parse_url("http://example.com:70000/")

    def test_no_dot_raises(self):
        with pytest.raises(ValidationError):
            parse_url("http://localhost/")

    def test_unknown_tld_raises(self):
        with pytest.raises(ValidationError):
            parse_url("http://example.qqzz/")

    def test_str_round_trip(self):
        text = "https://sub.example.com/path?a=b"
        assert str(parse_url(text)) == text

    def test_try_parse_returns_none(self):
        assert try_parse_url("not a url") is None

    def test_apex_and_tld(self):
        url = parse_url("https://secure.bank-login.info/x")
        assert url.apex == "bank-login.info"
        assert url.effective_tld == "info"

    def test_apk_detection(self):
        assert parse_url("http://evil.com/internet.apk").is_apk_download
        assert not parse_url("http://evil.com/page").is_apk_download

    def test_with_path(self):
        url = parse_url("https://a.com/x").with_path("/y", "d=s1")
        assert url.path == "/y"
        assert url.query == "d=s1"

    def test_without_query(self):
        url = parse_url("https://a.com/x?q=1").without_query()
        assert url.query == ""


class TestDefangRefang:
    def test_refang_brackets(self):
        assert refang("bit[.]ly/abc") == "bit.ly/abc"

    def test_refang_hxxp(self):
        assert refang("hxxps://evil.com") == "https://evil.com"

    def test_defang_host_only(self):
        url = parse_url("https://sa-krs.web.app/x")
        assert defang(url) == "hxxps://sa-krs[.]web[.]app/x"

    def test_defang_round_trip(self):
        original = "https://evil.example.com/login"
        assert str(parse_url(refang(defang(parse_url(original))))) == original

    def test_parse_accepts_defanged(self):
        url = parse_url("hxxp://evil[.]com/x")
        assert url.host == "evil.com"


class TestExtractUrls:
    def test_single_url(self):
        urls = extract_urls("Click https://bad.com/verify now")
        assert [str(u) for u in urls] == ["https://bad.com/verify"]

    def test_schemeless_url(self):
        urls = extract_urls("go to ceskaposta.online/track today")
        assert urls[0].host == "ceskaposta.online"

    def test_trailing_punctuation_stripped(self):
        urls = extract_urls("visit https://bad.com/x.")
        assert str(urls[0]).endswith("/x")

    def test_sentence_boundary_not_url(self):
        # "now.Next" has an unknown TLD and must not extract.
        assert extract_urls("do it now.Next week we talk") == []

    def test_multiple_urls_in_order(self):
        urls = extract_urls("a bit.ly/x then evil.com/y")
        assert urls[0].host == "bit.ly"
        assert urls[1].host == "evil.com"

    def test_duplicates_removed(self):
        urls = extract_urls("https://a.com/x and https://a.com/x")
        assert len(urls) == 1

    def test_denylist_platform_hosts(self):
        assert extract_urls("see twitter.com/someuser") == []

    def test_denylist_can_be_included(self):
        urls = extract_urls("see twitter.com/u", include_denylisted=True)
        assert len(urls) == 1

    def test_no_urls(self):
        assert extract_urls("hello there, no links here") == []


class TestRedirectChain:
    def test_append_and_final(self):
        chain = RedirectChain()
        a = parse_url("https://bit.ly/x")
        b = parse_url("https://evil.com/")
        chain.append(a)
        chain.append(b)
        assert chain.start == a
        assert chain.final == b
        assert len(chain) == 2
        assert list(chain) == [a, b]

    def test_empty_chain(self):
        chain = RedirectChain()
        assert chain.start is None
        assert chain.final is None


class TestJoinWrappedUrl:
    def test_rejoins_split_url(self):
        lines = [
            "Your parcel is waiting: https://evil.com/very",
            "longpath123",
        ]
        joined = join_wrapped_url(lines)
        assert "https://evil.com/verylongpath123" in joined

    def test_leaves_normal_lines(self):
        lines = ["hello there", "second line"]
        assert join_wrapped_url(lines) == "hello there\nsecond line"
