"""Golden-snapshot tests for the ``repro stats`` CLI surface.

The full stdout of ``python -m repro stats`` at a fixed seed — header
line, Pipeline stages, Hot paths, Service telemetry, Resilience, Cache,
and Run counters tables, plus the per-service gap report — is checked
in under
``tests/golden/`` and compared byte-for-byte. Wall-clock span timings
are the one nondeterministic ingredient, so the tests freeze the
tracer's time source at 0.0 (every "Wall (s)" cell renders as 0.0);
everything else is a pure function of the seed and the sim clock.

Regenerating after an intentional output change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest -q tests/test_stats_golden.py

then review the golden diff like any other code change.
"""

import os
from pathlib import Path

import pytest

import repro.cli as cli
import repro.obs.telemetry as telemetry_mod
from repro.obs.trace import Tracer

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "stats_seed7_none.txt": ["--seed", "7", "--campaigns", "10",
                             "--quiet", "stats"],
    "stats_seed7_flaky.txt": ["--seed", "7", "--campaigns", "10",
                              "--quiet", "--faults", "flaky", "stats"],
    "stats_seed7_workers4.txt": ["--seed", "7", "--campaigns", "10",
                                 "--quiet", "--workers", "4", "stats"],
    "stats_seed7_nocache.txt": ["--seed", "7", "--campaigns", "10",
                                "--quiet", "--no-cache", "stats"],
    "stats_seed7_epochs3.txt": ["--seed", "7", "--campaigns", "10",
                                "--quiet", "stats", "--epochs", "3"],
    "stats_seed7_process4.txt": ["--seed", "7", "--campaigns", "10",
                                 "--quiet", "--workers", "4",
                                 "--pool", "process", "stats"],
    "stats_seed7_hostile.txt": ["--seed", "7", "--campaigns", "10",
                                "--quiet", "--hostile", "poison", "stats"],
}


def _without_table(text: str, title: str) -> str:
    """Drop one rendered table (a blank-line-separated chunk) by title.

    The Pools table's task counts legitimately differ across worker
    counts and pool kinds (shard fan-out), so cross-golden equivalence
    checks compare everything *around* it.
    """
    chunks = text.split("\n\n")
    return "\n\n".join(c for c in chunks
                       if c.splitlines()[0:1] != [title])


@pytest.fixture
def frozen_wall_clock(monkeypatch):
    """Pin every tracer's wall-time source so span timings are bytes."""

    def frozen_tracer(**kwargs):
        kwargs["time_source"] = lambda: 0.0
        return Tracer(**kwargs)

    monkeypatch.setattr(telemetry_mod, "Tracer", frozen_tracer)


@pytest.mark.parametrize("golden_name", sorted(CASES))
def test_stats_output_matches_golden(golden_name, frozen_wall_clock,
                                     capsys):
    argv = CASES[golden_name]
    assert cli.main(list(argv)) == 0
    output = capsys.readouterr().out
    golden_path = GOLDEN_DIR / golden_name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(output, encoding="utf-8")
        pytest.skip(f"updated golden {golden_name}")
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with "
        f"REPRO_UPDATE_GOLDEN=1 (see module docstring)"
    )
    expected = golden_path.read_text(encoding="utf-8")
    assert output == expected, (
        f"`repro stats` output diverged from {golden_name}; if the "
        f"change is intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )


RESUMED_GOLDEN = "stats_seed7_flaky_resumed.txt"


def test_resumed_stats_matches_golden(frozen_wall_clock, capsys, tmp_path):
    """`repro resume` stats: Checkpoint table populated, same pipeline
    numbers as the uninterrupted flaky run (resume is byte-identical),
    and all of it golden-pinned like the other surfaces."""
    checkpoint_dir = tmp_path / "ck"
    crash_argv = ["--seed", "7", "--campaigns", "10", "--quiet",
                  "--faults", "flaky", "--checkpoint-dir",
                  str(checkpoint_dir), "--crash-at", "whois:5", "stats"]
    assert cli.main(crash_argv) == 75
    capsys.readouterr()
    assert cli.main(["resume", "--checkpoint-dir",
                     str(checkpoint_dir)]) == 0
    output = capsys.readouterr().out
    golden_path = GOLDEN_DIR / RESUMED_GOLDEN
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(output, encoding="utf-8")
        pytest.skip(f"updated golden {RESUMED_GOLDEN}")
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with "
        f"REPRO_UPDATE_GOLDEN=1 (see module docstring)"
    )
    assert output == golden_path.read_text(encoding="utf-8"), (
        f"resumed `repro stats` output diverged from {RESUMED_GOLDEN}; "
        f"if intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )


def test_resumed_golden_covers_the_checkpoint_table():
    resumed = (GOLDEN_DIR / RESUMED_GOLDEN).read_text()
    assert "Checkpoint" in resumed
    assert "resume" in resumed
    assert "Stages restored" in resumed
    # The resumed run reports the same pipeline results as the
    # uninterrupted flaky golden: same header counts, same gap report.
    flaky = (GOLDEN_DIR / "stats_seed7_flaky.txt").read_text()
    assert resumed.splitlines()[0] == flaky.splitlines()[0]


HISTORY_GOLDEN = "stats_history_two_runs.txt"


def test_history_stats_matches_golden(frozen_wall_clock, capsys, tmp_path):
    """`repro stats --history` over two recorded runs: the Run-history
    table (with Δ columns vs the comparable predecessor) and the Stage
    trends table, golden-pinned. The frozen wall clock makes every
    recorded timing 0.0, so the records — and the rendered trend
    report — are bytes."""
    history_dir = tmp_path / "perf"
    run_argv = ["--seed", "7", "--campaigns", "10", "--quiet",
                "--history-dir", str(history_dir), "stats"]
    assert cli.main(list(run_argv)) == 0
    assert cli.main(list(run_argv)) == 0
    capsys.readouterr()
    assert cli.main(["stats", "--history",
                     "--history-dir", str(history_dir)]) == 0
    output = capsys.readouterr().out
    golden_path = GOLDEN_DIR / HISTORY_GOLDEN
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(output, encoding="utf-8")
        pytest.skip(f"updated golden {HISTORY_GOLDEN}")
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with "
        f"REPRO_UPDATE_GOLDEN=1 (see module docstring)"
    )
    assert output == golden_path.read_text(encoding="utf-8"), (
        f"`repro stats --history` output diverged from {HISTORY_GOLDEN}; "
        f"if intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )


def test_history_golden_covers_the_trend_tables():
    history = (GOLDEN_DIR / HISTORY_GOLDEN).read_text()
    assert "Run history" in history
    assert "Δ wall (s)" in history and "Δ charged" in history
    assert "Stage trends (run 1 vs run 0)" in history
    # Run 1 has run 0 as its comparable predecessor: identical charged
    # volumes, so the delta column pins the +0 case.
    assert "+0" in history


def test_goldens_cover_cache_and_resilience_tables():
    """The checked-in snapshots really exercise the new surfaces."""
    cached = (GOLDEN_DIR / "stats_seed7_none.txt").read_text()
    assert "Cache" in cached and "Hit rate" in cached
    assert "Resilience" in cached
    uncached = (GOLDEN_DIR / "stats_seed7_nocache.txt").read_text()
    assert "cache=off" in uncached
    assert "Hit rate" not in uncached
    flaky = (GOLDEN_DIR / "stats_seed7_flaky.txt").read_text()
    assert "Enrichment gaps:" in flaky
    # Parallel and serial runs print byte-identical stats apart from the
    # header's workers field, the precompute span's workers attr, and
    # the Pools table's shard fan-out — the golden twins are themselves
    # an equivalence check.
    parallel = (GOLDEN_DIR / "stats_seed7_workers4.txt").read_text()
    assert "Pools" in cached and "Pools" in parallel
    assert (_without_table(parallel, "Pools")
            == _without_table(cached, "Pools").replace("workers=1",
                                                       "workers=4"))
    # The process-pool golden is the same equivalence one axis further:
    # identical bytes outside the Pools table, with only the header's
    # pool field (and worker count) differing from the serial twin.
    process = (GOLDEN_DIR / "stats_seed7_process4.txt").read_text()
    assert "pool=process" in process.splitlines()[0]
    assert (_without_table(process, "Pools")
            == _without_table(cached, "Pools")
            .replace("workers=1", "workers=4")
            .replace("pool=thread", "pool=process"))


def test_hostile_golden_covers_the_quarantine_table():
    """The poison golden carries the Quarantine table and header
    quarantine count; the clean golden must carry neither — the table
    renders only when something was diverted."""
    hostile = (GOLDEN_DIR / "stats_seed7_hostile.txt").read_text()
    header = hostile.splitlines()[0]
    assert "hostile=poison" in header
    assert "quarantined=43" in header
    assert "Quarantine" in hostile
    for reason in ("reporter_flood", "poison_cluster", "oversize_body",
                   "unicode_anomaly", "malformed_url", "invalid_timestamp"):
        assert reason in hostile, f"golden lacks quarantine reason {reason}"
    clean = (GOLDEN_DIR / "stats_seed7_none.txt").read_text()
    assert "quarantined=" not in clean
    assert "Quarantine" not in clean
    # Clean-subset identity, visible in the goldens themselves: the
    # record count survives hostility byte-for-byte in both headers.
    assert " records=384 " in header and " records=384 " in \
        clean.splitlines()[0]


SERVE_ARGV =["--seed", "7", "--campaigns", "10", "--quiet", "serve",
              "--load-profile", "burst", "--requests", "800",
              "--reporters", "150", "--queue-capacity", "24",
              "--batch-size", "8"]

SERVE_CASES = {
    "serve_seed7_burst.txt": SERVE_ARGV,
    "serve_seed7_burst_flaky.txt": (["--faults", "flaky"] + SERVE_ARGV),
}


@pytest.mark.parametrize("golden_name", sorted(SERVE_CASES))
def test_serve_output_matches_golden(golden_name, frozen_wall_clock,
                                     capsys):
    """`repro serve` stdout — header, stage table, Serve + mode-transition
    tables, queue/latency footers — golden-pinned like the stats surfaces."""
    argv = SERVE_CASES[golden_name]
    assert cli.main(list(argv)) == 0
    output = capsys.readouterr().out
    golden_path = GOLDEN_DIR / golden_name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(output, encoding="utf-8")
        pytest.skip(f"updated golden {golden_name}")
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with "
        f"REPRO_UPDATE_GOLDEN=1 (see module docstring)"
    )
    assert output == golden_path.read_text(encoding="utf-8"), (
        f"`repro serve` output diverged from {golden_name}; if the "
        f"change is intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )


def test_serve_golden_covers_the_serve_tables():
    """The checked-in serve snapshot really shows the overload story:
    queue-depth percentiles, shed accounting, and the full
    shed-and-recover mode cycle."""
    served = (GOLDEN_DIR / "serve_seed7_burst.txt").read_text()
    assert "Serve" in served
    assert "Queue depth p50/p90/p99/max" in served
    assert "Intake latency p50/p99 (sim s)" in served
    assert "Serve mode transitions" in served
    assert "breached high watermark" in served
    assert "recovered: queue depth" in served
    assert "shedding=" in served  # shed counts broken down by reason
    # The flaky twin additionally degrades on enrichment-tier pressure.
    flaky = (GOLDEN_DIR / "serve_seed7_burst_flaky.txt").read_text()
    assert "degraded" in flaky


INVESTIGATE_BASE = ["--seed", "7", "--campaigns", "30", "--quiet"]
INVESTIGATE_SUB = ["investigate", "--playbook", "full-funnel",
                   "--sample", "120"]

INVESTIGATE_CASES = {
    "investigate_seed7_full.txt": INVESTIGATE_BASE + INVESTIGATE_SUB,
    "investigate_seed7_process4.txt": (
        INVESTIGATE_BASE + ["--workers", "4", "--pool", "process"]
        + INVESTIGATE_SUB),
}


@pytest.mark.parametrize("golden_name", sorted(INVESTIGATE_CASES))
def test_investigate_output_matches_golden(golden_name, frozen_wall_clock,
                                           capsys):
    """`repro investigate` stdout — header, stage table, Investigations
    table, fleet fingerprint — golden-pinned like the other surfaces."""
    argv = INVESTIGATE_CASES[golden_name]
    assert cli.main(list(argv)) == 0
    output = capsys.readouterr().out
    golden_path = GOLDEN_DIR / golden_name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(output, encoding="utf-8")
        pytest.skip(f"updated golden {golden_name}")
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with "
        f"REPRO_UPDATE_GOLDEN=1 (see module docstring)"
    )
    assert output == golden_path.read_text(encoding="utf-8"), (
        f"`repro investigate` output diverged from {golden_name}; if the "
        f"change is intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )


def test_investigate_golden_covers_the_investigations_table():
    """The checked-in investigate snapshot really shows the fleet story:
    funnel outcomes, evidence accounting, step latencies, and — across
    the serial/process twins — the pool-equivalence fingerprint."""
    full = (GOLDEN_DIR / "investigate_seed7_full.txt").read_text()
    header = full.splitlines()[0]
    assert "playbook=full-funnel" in header
    assert "scans=" in header and "scan_gaps=" in header
    assert "Investigations" in full
    assert "Funnel depth distribution" in full
    assert "Evidence packages" in full
    assert "Step hash_and_scan p50/p99 (ms)" in full
    assert "investigate fingerprint=" in full

    def fingerprint(text):
        return next(line for line in text.splitlines()
                    if line.startswith("investigate fingerprint="))

    # The process-pool twin is the pool-matrix equivalence guarantee,
    # visible in the goldens themselves: same fleet fingerprint, only
    # the header's workers/pool fields and the Pool row differ.
    process = (GOLDEN_DIR / "investigate_seed7_process4.txt").read_text()
    assert "pool=process" in process.splitlines()[0]
    assert fingerprint(process) == fingerprint(full)


def test_stream_golden_covers_the_epoch_table():
    """`repro stats --epochs 3` pins the Stream/Epoch surface: one row
    per epoch, the ledger summary line, and the stream fingerprint."""
    streamed = (GOLDEN_DIR / "stats_seed7_epochs3.txt").read_text()
    assert "epochs=3" in streamed.splitlines()[0]
    assert "Stream" in streamed
    assert "(ledger)" in streamed
    assert "stream/epoch" in streamed  # per-epoch spans in the stage table
    for epoch_index in ("0", "1", "2"):
        assert any(line.strip().startswith(epoch_index)
                   for line in streamed.splitlines()), (
            f"no Stream-table row for epoch {epoch_index}")
