"""Tests for the extraction-quality evaluation."""

import pytest

from repro.analysis.quality import (
    evaluate_extraction_quality,
    loss_breakdown,
)


class TestExtractionQuality:
    @pytest.fixture(scope="class")
    def report(self, world, pipeline_run):
        return evaluate_extraction_quality(world, pipeline_run.dataset)

    def test_evaluates_most_records(self, report, pipeline_run):
        assert report.records_evaluated > len(pipeline_run.dataset) * 0.9

    def test_text_recovery_near_perfect(self, report):
        # §3.2: the vision extractor recovers text from every SMS image;
        # only URL-redacted reports alter the text.
        assert report.text.recall > 0.99
        assert report.text.accuracy > 0.85

    def test_sender_recovery_high_but_lossy(self, report):
        # Redactions (~12%) plus the extractor's small miss rate.
        assert 0.75 < report.sender.recall < 0.99
        assert report.sender.accuracy > 0.98

    def test_url_recovery(self, report):
        # Reporter URL redactions ("bit.ly/***") cap accuracy below 1.
        assert report.url.recall > 0.85
        assert report.url.accuracy > 0.9

    def test_timestamp_recovery(self, report):
        assert report.timestamp.recall > 0.9
        assert report.timestamp.accuracy > 0.9

    def test_table_renders(self, report):
        text = report.to_table().to_text()
        assert "Recall" in text
        assert "sender" in text

    def test_loss_breakdown(self, world, pipeline_run):
        losses = loss_breakdown(world, pipeline_run.dataset)
        assert losses["sender_missing"] > 0      # redactions happen
        assert losses["timestamp_dateless"] > 0  # time_only app style
