"""Unit and integration tests for :mod:`repro.stream`.

The differential guarantee (N epochs == one batch run) lives in
``test_stream_equivalence.py``; this file covers the moving parts —
epoch planning, watermark cursors, the dedup ledger, atomic persistence
— and the durable session lifecycle: watch, crash, resume, ingest.
"""

import dataclasses
import datetime as dt
import json

import pytest

from repro.cli import main
from repro.core.collection import CollectionResult, RawReport
from repro.core.config import CollectionWindows
from repro.core.dataset import SmishingRecord
from repro.errors import CheckpointError, ConfigurationError
from repro.stream import (
    DedupLedger,
    EpochScheduler,
    EpochWindow,
    ForumCursor,
    STREAM_MANIFEST_NAME,
    STREAM_STATE_NAME,
    StreamSession,
    StreamState,
    WatermarkStore,
    clamp_windows,
    content_hash,
    global_window,
    plan_epochs,
)
from repro.stream.persist import (
    atomic_write_json,
    atomic_write_pickle,
    read_json,
    read_pickle,
)
from repro.types import Forum
from repro.world.scenario import ScenarioConfig

WINDOWS = CollectionWindows()


# ---------------------------------------------------------------------------
# Epoch planning


class TestEpochPlanning:
    def test_global_window_spans_every_forum(self):
        start, end = global_window(WINDOWS)
        assert start == min(WINDOWS.twitter_historical_start,
                            WINDOWS.reddit_start,
                            WINDOWS.smishing_eu_backlog_start,
                            WINDOWS.smishtank_start)
        assert end == max(WINDOWS.twitter_end, WINDOWS.reddit_end,
                          WINDOWS.smishing_eu_end, WINDOWS.smishtank_end)
        assert start < end

    @pytest.mark.parametrize("epochs", (1, 2, 3, 5, 7))
    def test_plan_epochs_partitions_exactly(self, epochs):
        plan = plan_epochs(WINDOWS, epochs=epochs)
        start, end = global_window(WINDOWS)
        assert len(plan) == epochs
        assert plan[0].start == start
        assert plan[-1].end == end
        for index, window in enumerate(plan):
            assert window.index == index
            assert window.start < window.end
        for left, right in zip(plan, plan[1:]):
            assert left.end == right.start

    def test_plan_epoch_hours_fixed_width_with_remainder(self):
        plan = plan_epochs(WINDOWS, epoch_hours=20000)
        start, end = global_window(WINDOWS)
        step = dt.timedelta(hours=20000)
        assert plan[0].start == start
        assert plan[-1].end == end
        for window in plan[:-1]:
            assert window.end - window.start == step
        assert plan[-1].end - plan[-1].start <= step

    def test_plan_epochs_rejects_bad_sizing(self):
        with pytest.raises(ConfigurationError):
            plan_epochs(WINDOWS, epochs=0)
        with pytest.raises(ConfigurationError):
            plan_epochs(WINDOWS, epoch_hours=0)
        with pytest.raises(ConfigurationError):
            plan_epochs(WINDOWS)

    @pytest.mark.parametrize("epochs", (2, 4, 9))
    def test_clamp_preserves_window_invariants(self, epochs):
        for window in plan_epochs(WINDOWS, epochs=epochs):
            clamped = clamp_windows(WINDOWS, window.start, window.end)
            assert (clamped.twitter_historical_start
                    <= clamped.twitter_realtime_start
                    <= clamped.twitter_end)
            assert clamped.reddit_start <= clamped.reddit_end
            assert clamped.smishing_eu_scrape_start <= clamped.smishing_eu_end
            assert clamped.smishtank_start <= clamped.smishtank_end
            # The backlog marker is history, not a scrape date.
            assert (clamped.smishing_eu_backlog_start
                    == WINDOWS.smishing_eu_backlog_start)

    def test_scheduler_pending_and_extend(self):
        plan = plan_epochs(WINDOWS, epochs=4)
        scheduler = EpochScheduler(plan, target=2)
        assert scheduler.capacity == 4
        assert [w.index for w in scheduler.pending(0)] == [0, 1]
        assert [w.index for w in scheduler.pending(2)] == []
        assert scheduler.extend() == 3
        assert [w.index for w in scheduler.pending(2)] == [2]
        scheduler.extend()
        with pytest.raises(ConfigurationError, match="plan exhausted"):
            scheduler.extend()

    def test_scheduler_rejects_bad_targets(self):
        plan = plan_epochs(WINDOWS, epochs=2)
        with pytest.raises(ConfigurationError):
            EpochScheduler(plan, target=0)
        with pytest.raises(ConfigurationError):
            EpochScheduler(plan, target=3)
        with pytest.raises(ConfigurationError):
            EpochScheduler([], target=1)


# ---------------------------------------------------------------------------
# Watermarks


def _report(post_id: str, when: dt.datetime,
            forum: Forum = Forum.REDDIT) -> RawReport:
    return RawReport(forum=forum, post_id=post_id, author="u",
                     posted_at=when, body=f"body of {post_id}")


_T0 = dt.datetime(2020, 1, 1)
_EPOCH = EpochWindow(index=0, start=_T0, end=_T0 + dt.timedelta(days=30))


class TestWatermarks:
    def test_cursor_advances_monotonically(self):
        cursor = ForumCursor()
        cursor.advance(_report("a", _T0 + dt.timedelta(days=2)))
        cursor.advance(_report("b", _T0 + dt.timedelta(days=1)))
        assert cursor.last_post_id == "a"
        assert cursor.ingested == 2
        restored = ForumCursor.from_dict(cursor.to_dict())
        assert restored == cursor

    def test_filter_partitions_fresh_seen_deferred(self):
        store = WatermarkStore()
        collection = CollectionResult(posts_seen=10)
        collection.reports = [
            _report("fresh", _T0 + dt.timedelta(days=1)),
            _report("backlog", _T0 - dt.timedelta(days=400)),
            _report("future", _EPOCH.end + dt.timedelta(days=1)),
            _report("fresh", _T0 + dt.timedelta(days=2)),  # same post id
        ]
        filtered = store.filter_epoch(collection, _EPOCH)
        assert [r.post_id for r in filtered.result.reports] == [
            "fresh", "backlog"]
        assert filtered.seen_dropped == 1
        assert filtered.deferred == 1
        # Bookkeeping passes through untouched.
        assert filtered.result.posts_seen == 10
        # filter_epoch is pure: nothing is seen until commit.
        assert not store.seen(Forum.REDDIT, "fresh")

        store.commit(filtered, _EPOCH)
        assert store.seen(Forum.REDDIT, "fresh")
        assert store.seen(Forum.REDDIT, "backlog")
        assert store.frontier == _EPOCH.end
        assert store.cursors[Forum.REDDIT].ingested == 2

    def test_resighting_is_dropped_next_epoch(self):
        store = WatermarkStore()
        first = CollectionResult()
        first.reports = [_report("p1", _T0 + dt.timedelta(days=1))]
        store.commit(store.filter_epoch(first, _EPOCH), _EPOCH)

        nxt = EpochWindow(index=1, start=_EPOCH.end,
                          end=_EPOCH.end + dt.timedelta(days=30))
        again = CollectionResult()
        again.reports = [_report("p1", _T0 + dt.timedelta(days=1)),
                         _report("p2", _EPOCH.end + dt.timedelta(days=1))]
        filtered = store.filter_epoch(again, nxt)
        assert [r.post_id for r in filtered.result.reports] == ["p2"]
        assert filtered.seen_dropped == 1

    def test_store_round_trips(self):
        store = WatermarkStore()
        collection = CollectionResult()
        collection.reports = [
            _report("a", _T0 + dt.timedelta(days=3)),
            _report("b", _T0 + dt.timedelta(days=4), Forum.TWITTER),
        ]
        store.commit(store.filter_epoch(collection, _EPOCH), _EPOCH)
        restored = WatermarkStore.from_dict(store.to_dict())
        assert restored.to_dict() == store.to_dict()
        assert restored.frontier == store.frontier
        assert restored.seen(Forum.TWITTER, "b")


# ---------------------------------------------------------------------------
# Dedup ledger


def _record(record_id: str, text: str, post_id: str = "p",
            forum: Forum = Forum.REDDIT) -> SmishingRecord:
    return SmishingRecord(record_id=record_id, forum=forum,
                          source_post_id=post_id, text=text)


class TestDedupLedger:
    def test_content_hash_ignores_provenance(self):
        a = _record("r1", "Your parcel is waiting", post_id="x",
                    forum=Forum.REDDIT)
        b = _record("r2", "your  parcel   is WAITING", post_id="y",
                    forum=Forum.TWITTER)
        assert content_hash(a) == content_hash(b)
        assert content_hash(a) != content_hash(_record("r3", "other text"))

    def test_divide_within_epoch(self):
        ledger = DedupLedger()
        division = ledger.divide([
            _record("r1", "msg one"),
            _record("r2", "msg one"),
            _record("r3", "msg two"),
        ])
        assert [r.record_id for r in division.delta] == ["r1", "r3"]
        assert division.duplicate_of == {"r2": "r1"}
        assert ledger.hits == 1 and ledger.misses == 2

    def test_divide_is_pure_until_commit(self):
        ledger = DedupLedger()
        records = [_record("r1", "msg"), _record("r2", "msg")]
        first = ledger.divide(records)
        replay = ledger.divide(records)
        assert [r.record_id for r in replay.delta] == [
            r.record_id for r in first.delta]
        assert replay.duplicate_of == first.duplicate_of
        assert len(ledger) == 0

        ledger.commit(first.new_hashes)
        assert len(ledger) == 1
        cross = ledger.divide([_record("r9", "msg")])
        assert cross.delta == []
        assert cross.duplicate_of == {"r9": "r1"}

    def test_round_trip_and_stats(self):
        ledger = DedupLedger()
        division = ledger.divide([_record("r1", "a"), _record("r2", "a"),
                                  _record("r3", "b")])
        ledger.commit(division.new_hashes)
        restored = DedupLedger.from_dict(ledger.to_dict())
        assert restored.to_dict() == ledger.to_dict()
        stats = restored.stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["hit_rate"] == pytest.approx(1 / 3)
        digest = content_hash(_record("x", "a"))
        assert digest in restored
        assert restored.canonical_id(digest) == "r1"


# ---------------------------------------------------------------------------
# Atomic persistence


class TestPersist:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "payload.json"
        path.parent.mkdir()
        atomic_write_json(path, {"b": 1, "a": [2, 3]})
        assert read_json(path) == {"b": 1, "a": [2, 3]}

    def test_pickle_round_trip_verifies_digest(self, tmp_path):
        path = tmp_path / "state.pkl"
        digest = atomic_write_pickle(path, {"k": list(range(5))})
        assert read_pickle(path, expected_sha256=digest) == {
            "k": [0, 1, 2, 3, 4]}

    def test_corrupted_pickle_is_rejected(self, tmp_path):
        path = tmp_path / "state.pkl"
        digest = atomic_write_pickle(path, {"k": 1})
        path.write_bytes(path.read_bytes() + b"tamper")
        with pytest.raises(CheckpointError, match="digest"):
            read_pickle(path, expected_sha256=digest)


# ---------------------------------------------------------------------------
# Durable session lifecycle


_SCENARIO = ScenarioConfig(seed=7, n_campaigns=5)


@pytest.fixture(scope="module")
def durable(tmp_path_factory):
    """One durable 2-epoch watch, shared by the lifecycle assertions."""
    stream_dir = tmp_path_factory.mktemp("stream") / "run"
    session = StreamSession.create(_SCENARIO, epochs=2,
                                   stream_dir=str(stream_dir))
    state = session.run()
    return stream_dir, session, state


class TestDurableSession:
    def test_manifest_and_state_files(self, durable):
        stream_dir, session, state = durable
        manifest = json.loads(
            (stream_dir / STREAM_MANIFEST_NAME).read_text())
        assert manifest["committed"] == manifest["target_epochs"] == 2
        assert manifest["scenario"]["seed"] == 7
        assert len(manifest["plan"]) == 2
        assert manifest["state_file"] == STREAM_STATE_NAME
        payload = read_pickle(stream_dir / STREAM_STATE_NAME,
                              expected_sha256=manifest["state_sha256"])
        assert StreamState.from_payload(payload).fingerprint() \
            == state.fingerprint()

    def test_load_restores_everything(self, durable):
        stream_dir, session, state = durable
        loaded = StreamSession.load(str(stream_dir))
        assert loaded.state.fingerprint() == state.fingerprint()
        assert loaded.state.committed_epochs == 2
        assert len(loaded.ledger) == len(session.ledger)
        assert loaded.watermarks.to_dict() == session.watermarks.to_dict()
        # Delta enrichment: prior epochs' cache entries are re-seeded.
        assert loaded.stats()["cache_seeded"] > 0

    def test_epoch_stamps_and_additive_merges(self, durable):
        _, _, state = durable
        assert sum(s.records for s in state.epoch_stats) == len(state.dataset)
        assert sum(s.new_reports for s in state.epoch_stats) \
            == len(state.collection.reports)
        for gap in state.gaps:
            assert gap.epoch in (0, 1)
        for lim in state.collection.limitations:
            assert lim.epoch in (0, 1)
        stamped = {s.index for s in state.epoch_stats}
        assert stamped == {0, 1}

    def test_refuses_to_clobber_existing_stream(self, durable):
        stream_dir, _, _ = durable
        with pytest.raises(ConfigurationError, match="resume"):
            StreamSession.create(_SCENARIO, epochs=2,
                                 stream_dir=str(stream_dir))

    def test_matches_in_memory_session(self, durable):
        _, _, state = durable
        in_memory = StreamSession.create(_SCENARIO, epochs=2).run()
        assert in_memory.fingerprint() == state.fingerprint()


class TestIngest:
    def test_ingest_pages_forward(self, tmp_path):
        stream_dir = tmp_path / "run"
        session = StreamSession.create(
            _SCENARIO, epochs=2, epoch_hours=18000,
            stream_dir=str(stream_dir))
        assert session.scheduler.capacity > 2
        first = session.run()
        before = len(first.dataset)

        loaded = StreamSession.load(str(stream_dir))
        state = loaded.ingest(epochs=1)
        assert state.committed_epochs == 3
        assert len(state.dataset) >= before
        manifest = json.loads(
            (stream_dir / STREAM_MANIFEST_NAME).read_text())
        assert manifest["committed"] == manifest["target_epochs"] == 3

    def test_ingest_requires_caught_up_stream(self, tmp_path):
        stream_dir = tmp_path / "run"
        session = StreamSession.create(
            _SCENARIO, epochs=2, stream_dir=str(stream_dir), crash_at=(
                "whois", 2), crash_epoch=0)
        from repro.errors import SimulatedCrash
        with pytest.raises(SimulatedCrash):
            session.run()
        loaded = StreamSession.load(str(stream_dir))
        with pytest.raises(ConfigurationError, match="resume"):
            loaded.ingest()


class TestStreamCli:
    ARGS = ["--seed", "7", "--campaigns", "5", "--quiet"]

    @staticmethod
    def _fingerprint(out: str) -> str:
        lines = [l for l in out.splitlines()
                 if l.startswith("stream fingerprint=")]
        assert len(lines) == 1, out
        return lines[0]

    def test_watch_prints_stream_table(self, capsys):
        assert main(self.ARGS + ["watch", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Stream" in out
        assert "(ledger)" in out
        self._fingerprint(out)

    def test_stats_epochs_mode(self, capsys):
        assert main(self.ARGS + ["stats", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "epochs=2" in out
        assert "Stream" in out

    def test_crash_resume_matches_clean_run(self, tmp_path, capsys):
        clean_dir = tmp_path / "clean"
        assert main(self.ARGS + [
            "watch", "--epochs", "2", "--stream-dir", str(clean_dir)]) == 0
        clean = self._fingerprint(capsys.readouterr().out)

        crash_dir = tmp_path / "crashed"
        code = main(self.ARGS + [
            "--crash-at", "whois:2", "watch", "--epochs", "2",
            "--crash-epoch", "1", "--stream-dir", str(crash_dir)])
        err = capsys.readouterr().err
        assert code == 75
        assert f"repro resume --stream-dir {crash_dir}" in err

        assert main(self.ARGS + [
            "resume", "--stream-dir", str(crash_dir)]) == 0
        resumed = self._fingerprint(capsys.readouterr().out)
        assert resumed == clean

    def test_ingest_cli_pages_forward(self, tmp_path, capsys):
        stream_dir = tmp_path / "run"
        assert main(self.ARGS + [
            "watch", "--epochs", "2", "--epoch-hours", "18000",
            "--stream-dir", str(stream_dir)]) == 0
        capsys.readouterr()
        assert main(["ingest", "--stream-dir", str(stream_dir),
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "epochs=3" in out or "Stream" in out

    def test_validation_rejects_bad_combinations(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["resume", "--stream-dir", str(missing)]) == 2
        assert main(["resume"]) == 2
        assert main(self.ARGS + [
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "watch", "--epochs", "2"]) == 2
        assert main(["ingest", "--stream-dir", str(missing)]) == 2
        capsys.readouterr()
