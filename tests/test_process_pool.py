"""Process-pool regression suite: pickling, spawn contexts, failures.

The :class:`~repro.exec.ProcessPool` ships tasks across a pickle
boundary, so everything the precompute phase closes over must survive
``pickle.dumps`` — including under the ``spawn`` start method, where the
worker is a from-scratch interpreter that re-imports ``repro`` (the
macOS/Windows default, exercised here explicitly so a fork-only Linux
CI cannot hide a spawn regression). The differential matrix in
``tests/test_exec_equivalence.py`` proves whole runs byte-identical;
this module pins the sharp edges individually.
"""

import multiprocessing
import pickle

import pytest

from repro.core.enrichment import AnnotateShardTask, ScanShardTask
from repro.exec import (
    EnrichmentCache,
    ProcessPool,
    SerialPool,
    ThreadPool,
    make_pool,
    shard,
)
from repro.faults import build_fault_plan
from repro.nlp.annotator import MessageAnnotator


def _square(value):
    """Module-level on purpose: process-pool tasks must be picklable."""
    return value * value


def _explode_on_odd(value):
    if value % 2:
        raise RuntimeError(f"task-{value}")
    return value


# -- pickling regressions ------------------------------------------------------


def test_enrichment_cache_round_trips_through_pickle():
    """The cache guards itself with a lock, which cannot be pickled;
    ``__getstate__``/``__setstate__`` must drop and rebuild it so worker
    startup can ship a warm cache."""
    cache = EnrichmentCache()
    cache.put_value("openai", "hello", {"label": 1})
    cache.put_value("whois", "evil.test", "registrar")
    restored = pickle.loads(pickle.dumps(cache))
    assert restored.get("openai", "hello").value == {"label": 1}
    assert restored.get("whois", "evil.test").value == "registrar"
    # The rebuilt lock must actually work: a post-restore lookup takes it.
    assert restored.lookup("openai", "hello",
                           lambda: None).value == {"label": 1}
    stats = restored.stats()
    assert stats["services"]["openai"]["hits"] >= 1


@pytest.mark.parametrize("profile", ["none", "flaky", "outage"])
def test_fault_plan_round_trips_through_pickle(profile):
    plan = build_fault_plan(profile, seed=7)
    restored = pickle.loads(pickle.dumps(plan))
    assert type(restored) is type(plan)
    assert restored.seed == plan.seed
    assert restored.profile == plan.profile
    assert len(restored.rules) == len(plan.rules)


def test_shard_tasks_are_picklable():
    annotate = AnnotateShardTask(MessageAnnotator())
    assert pickle.loads(pickle.dumps(annotate)) is not None
    scan = ScanShardTask(frozenset({"evil.test"}))
    restored = pickle.loads(pickle.dumps(scan))
    assert restored._known_bad_hosts == frozenset({"evil.test"})


# -- spawn-context regression --------------------------------------------------


def test_process_pool_under_spawn_context_matches_serial():
    """``spawn`` workers start with an empty interpreter: every task,
    argument, and result must round-trip through pickle and re-import.
    One pool, both shard-task kinds, results compared against inline."""
    annotator = MessageAnnotator()
    texts = ["Your N3tfl!x account is on hold", "URGENT: verify your bank"]
    urls = ["http://evil.test/login", "https://short.test/x"]
    annotate = AnnotateShardTask(annotator)
    scan = ScanShardTask(frozenset({"evil.test"}))
    with ProcessPool(2, mp_context=multiprocessing.get_context(
            "spawn")) as pool:
        annotated = pool.map(annotate, shard(texts, pool.workers))
        scanned = pool.map(scan, shard(urls, pool.workers))
    assert annotated == SerialPool().map(annotate, shard(texts, 2))
    assert scanned == SerialPool().map(scan, shard(urls, 2))


# -- merge and failure semantics -----------------------------------------------


def test_process_pool_merges_in_submission_order():
    with ProcessPool(4) as pool:
        assert pool.map(_square, range(20)) == [i * i for i in range(20)]
        stats = pool.stats()
    assert stats["kind"] == "ProcessPool"
    assert stats["tasks"] == 20


def test_process_pool_reraises_lowest_indexed_failure():
    with ProcessPool(4) as pool:
        with pytest.raises(RuntimeError) as excinfo:
            pool.map(_explode_on_odd, [0, 4, 7, 3, 9])
    # Index 2 (value 7) is the first failing submission, regardless of
    # which worker finished first.
    assert str(excinfo.value) == "task-7"


def test_make_pool_selects_backend_by_kind_and_width():
    assert isinstance(make_pool(4, "process"), ProcessPool)
    assert isinstance(make_pool(4, "thread"), ThreadPool)
    assert isinstance(make_pool(4, "serial"), SerialPool)
    # One worker never pays pool overhead, whatever the kind.
    assert isinstance(make_pool(1, "process"), SerialPool)
    with pytest.raises(ValueError):
        make_pool(4, "greenlet")
    with pytest.raises(ValueError):
        ProcessPool(0)
