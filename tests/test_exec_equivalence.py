"""Differential harness for the execution engine's headline guarantee.

For any seed, fault profile, worker count, and cache setting, a
pipeline run must be *byte-identical* to the sequential uncached run:
same serialized dataset rows, same enrichment gaps, same collection
limitations, same §4–§6 analysis tables, same meter charges, and the
same final simulated-clock position. These tests run the full pipeline
grid (3 seeds × {none, flaky, outage} × serial/workers∈{2,4} ×
cache-on/off) on a small world and compare fingerprints, plus the
cross-pool differential matrix (2 seeds × {none, flaky} ×
{serial, thread, process} × workers∈{1,4}), columnar-vs-row report
identity, and crash-at-boundary resume under the process pool.

The fingerprint deliberately covers more than the run's outputs: meter
snapshots and ``clock.now`` prove the *effects* (charges, backoff,
retries) were replayed identically, not just that the answers agree.
"""

import pytest

import repro.cli as cli
from repro.analysis.report import generate_paper_report
from repro.core.pipeline import run_pipeline
from repro.exec import POOL_KINDS, SEQUENTIAL, ExecutionPolicy
from repro.faults import build_fault_plan
from repro.world.scenario import ScenarioConfig, build_world

from tests.fingerprints import fingerprint_run

SEEDS = (3, 11, 1042)
PROFILES = ("none", "flaky", "outage")
#: Every policy that must reproduce SEQUENTIAL byte-for-byte.
POLICIES = (
    ExecutionPolicy(workers=1, cache=True),
    ExecutionPolicy(workers=2, cache=True),
    ExecutionPolicy(workers=4, cache=True),
    ExecutionPolicy(workers=4, cache=False),
)
_CAMPAIGNS = 6


def run_fingerprint(seed: int, profile: str, policy: ExecutionPolicy,
                    campaigns: int = _CAMPAIGNS) -> str:
    """One pipeline run, serialized down to every observable byte."""
    world = build_world(ScenarioConfig(seed=seed, n_campaigns=campaigns))
    plan = build_fault_plan(profile, seed=seed)
    run = run_pipeline(world, fault_plan=plan, execution=policy)
    return fingerprint_run(run)


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("seed", SEEDS)
def test_grid_equivalent_to_sequential(seed, profile):
    baseline = run_fingerprint(seed, profile, SEQUENTIAL)
    for policy in POLICIES:
        candidate = run_fingerprint(seed, profile, policy)
        assert candidate == baseline, (
            f"seed={seed} faults={profile} workers={policy.workers} "
            f"cache={policy.cache} diverged from the sequential run"
        )


# -- the cross-pool differential matrix ---------------------------------------
#
# serial × thread × process backends must all reproduce the sequential
# fingerprint — dataset rows, gaps, report, meter charges, clock — over
# seeds × fault profiles × worker counts. The process pool runs the
# pure precompute in real OS subprocesses, so this is the proof that
# shipping shards across a pickle boundary and merging them back in
# canonical order changes nothing observable.

MATRIX_SEEDS = (7, 1042)
MATRIX_PROFILES = ("none", "flaky")
MATRIX_WORKERS = (1, 4)


@pytest.mark.parametrize("profile", MATRIX_PROFILES)
@pytest.mark.parametrize("seed", MATRIX_SEEDS)
def test_pool_matrix_equivalent_to_sequential(seed, profile):
    baseline = run_fingerprint(seed, profile, SEQUENTIAL)
    for pool in POOL_KINDS:
        for workers in MATRIX_WORKERS:
            policy = ExecutionPolicy(workers=workers, cache=True, pool=pool)
            candidate = run_fingerprint(seed, profile, policy)
            assert candidate == baseline, (
                f"seed={seed} faults={profile} pool={pool} "
                f"workers={workers} diverged from the sequential run"
            )


@pytest.mark.parametrize("seed", MATRIX_SEEDS)
def test_columnar_report_equivalent_to_row_report(seed):
    """``--columnar`` table building must be byte-identical, run by run.

    The case study is excluded on both sides because generating it
    twice against the same live world would charge meters twice; the
    columnar flag only drives tables 10-13 regardless.
    """
    world = build_world(ScenarioConfig(seed=seed, n_campaigns=_CAMPAIGNS))
    run = run_pipeline(world, execution=SEQUENTIAL)
    row = generate_paper_report(run, include_case_study=False).render()
    columnar = generate_paper_report(
        run, include_case_study=False, columnar=True).render()
    assert columnar == row


def test_process_pool_crash_resume_matches_uninterrupted(tmp_path, capsys):
    """Crash at an enrichment boundary under ``--pool process``, resume,
    and the resumed report must match the uninterrupted process-pool
    run byte-for-byte (the manifest round-trips the pool kind)."""
    base = ["--seed", "7", "--campaigns", "6", "--quiet",
            "--faults", "flaky", "--workers", "4", "--pool", "process"]
    checkpoint_dir = tmp_path / "ck"
    crash = base + ["--checkpoint-dir", str(checkpoint_dir),
                    "--crash-at", "whois:3", "report"]
    assert cli.main(crash) == 75
    capsys.readouterr()
    assert cli.main(["resume", "--checkpoint-dir",
                     str(checkpoint_dir), "--quiet"]) == 0
    resumed_report = capsys.readouterr().out
    assert cli.main(base + ["report"]) == 0
    assert resumed_report == capsys.readouterr().out


def test_rerun_of_same_policy_is_deterministic():
    policy = ExecutionPolicy(workers=4, cache=True)
    first = run_fingerprint(11, "flaky", policy)
    second = run_fingerprint(11, "flaky", policy)
    assert first == second


def test_cached_run_reports_hits_without_changing_outputs():
    """The cache must *measure* its savings while changing nothing."""
    world = build_world(ScenarioConfig(seed=5, n_campaigns=_CAMPAIGNS))
    from repro.obs import Telemetry

    telemetry = Telemetry.create(clock=world.clock)
    run = run_pipeline(world, telemetry=telemetry,
                       execution=ExecutionPolicy(workers=2, cache=True))
    snapshot = telemetry.cache_snapshot
    assert snapshot, "cached run captured no cache stats"
    assert snapshot["totals"]["hits"] > 0
    assert snapshot["hit_rate"] > 0.0
    # Precompute fills one entry per unique text (a miss + store each);
    # the replay then looks up once per record, and every lookup hits.
    openai = snapshot["services"]["openai"]
    assert openai["hits"] == len(run.dataset)
    assert openai["misses"] == openai["stores"]
    assert openai["stores"] == len({r.text for r in run.dataset})


def test_uncached_run_captures_no_cache_stats():
    world = build_world(ScenarioConfig(seed=5, n_campaigns=_CAMPAIGNS))
    from repro.obs import Telemetry

    telemetry = Telemetry.create(clock=world.clock)
    run_pipeline(world, telemetry=telemetry, execution=SEQUENTIAL)
    assert telemetry.cache_snapshot == {}
