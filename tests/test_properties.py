"""Property-based tests (hypothesis) on core data structures & invariants."""

import datetime as dt
import random
import string
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import (
    EnrichmentCache,
    SerialPool,
    ThreadPool,
    canonical_merge,
    shard,
)
from repro.nlp.brands_ner import BrandRecognizer
from repro.nlp.normalize import (
    MAX_NORMALIZE_CHARS,
    batch_normalize,
    batch_squash,
    normalize_text,
    squash,
)
from repro.imaging.screenshot import word_wrap
from repro.net.ipaddr import IPv4
from repro.net.url import Url, defang, parse_url, refang
from repro.sms.gsm import (
    is_gsm_text,
    pack_septets,
    segment_count,
    septet_length,
    split_segments,
    unpack_septets,
)
from repro.sms.senderid import normalize_phone, try_classify_sender_id
from repro.core.anonymize import scrub_text
from repro.core.collection import CollectionResult, RawReport
from repro.core.dataset import SmishingRecord, normalise_message_key
from repro.stream import (
    DedupLedger,
    EpochWindow,
    WatermarkStore,
    content_hash,
)
from repro.types import Forum
from repro.utils.rng import WeightedSampler, partition_count, stable_hash
from repro.utils.stats import cohens_kappa, ks_two_sample, median

GSM_SAFE = st.text(
    alphabet=string.ascii_letters + string.digits + " .,!?@£$-:/()'",
    min_size=0, max_size=400,
)


class TestGsmProperties:
    @given(GSM_SAFE)
    def test_split_segments_reassembles(self, text):
        assert "".join(split_segments(text)) == text

    @given(GSM_SAFE)
    def test_segment_count_matches_split(self, text):
        assert segment_count(text) == max(1, len(split_segments(text)))

    @given(GSM_SAFE.filter(lambda t: t != ""))
    def test_septet_pack_round_trip(self, text):
        if is_gsm_text(text):
            packed = pack_septets(text)
            assert unpack_septets(packed, septet_length(text)) == text

    @given(GSM_SAFE)
    def test_packed_size_bound(self, text):
        if is_gsm_text(text):
            septets = septet_length(text)
            assert len(pack_septets(text)) == (septets * 7 + 7) // 8


class TestUrlProperties:
    hosts = st.from_regex(r"[a-z][a-z0-9]{0,10}(\.[a-z][a-z0-9]{0,10}){0,2}"
                          r"\.(com|net|org|info|ly|in|xyz)", fullmatch=True)
    paths = st.from_regex(r"(/[a-zA-Z0-9._-]{0,12}){0,3}", fullmatch=True)

    @given(hosts, paths)
    def test_parse_str_round_trip(self, host, path):
        url = parse_url(f"https://{host}{path}")
        assert parse_url(str(url)) == url

    @given(hosts, paths)
    def test_defang_refang_inverse(self, host, path):
        original = f"https://{host}{path}"
        assert refang(defang(parse_url(original))) == original

    @given(hosts)
    def test_host_always_lowercase(self, host):
        url = parse_url("HTTPS://" + host.upper())
        assert url.host == url.host.lower()


class TestIPv4Properties:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_parse_str_round_trip(self, value):
        address = IPv4(value)
        assert IPv4.parse(str(address)) == address

    @given(st.integers(min_value=0, max_value=2**32 - 2))
    def test_ordering_consistent(self, value):
        assert IPv4(value) < IPv4(value + 1)


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=10_000),
           st.dictionaries(st.text(min_size=1, max_size=5),
                           st.floats(min_value=0.01, max_value=100),
                           min_size=1, max_size=8),
           st.integers(min_value=0, max_value=2**31))
    def test_partition_count_sums(self, total, weights, seed):
        counts = partition_count(random.Random(seed), total, weights)
        assert sum(counts.values()) == total
        assert all(v >= 0 for v in counts.values())

    @given(st.dictionaries(st.text(min_size=1, max_size=4),
                           st.floats(min_value=0.01, max_value=10),
                           min_size=1, max_size=6),
           st.integers(min_value=0, max_value=2**31))
    def test_sampler_only_returns_known_outcomes(self, weights, seed):
        sampler = WeightedSampler(weights)
        rng = random.Random(seed)
        for _ in range(20):
            assert sampler.sample(rng) in weights

    @given(st.text(max_size=50))
    def test_stable_hash_in_range(self, text):
        assert 0 <= stable_hash(text) < 2**32


class TestStatsProperties:
    labels = st.lists(st.sampled_from("abcd"), min_size=1, max_size=200)

    @given(labels)
    def test_kappa_self_agreement_is_one(self, seq):
        assert cohens_kappa(seq, seq) == pytest.approx(1.0)

    @given(labels, st.integers(min_value=0, max_value=2**31))
    def test_kappa_bounded(self, seq, seed):
        rng = random.Random(seed)
        other = [rng.choice("abcd") for _ in seq]
        kappa = cohens_kappa(seq, other)
        assert -1.0001 <= kappa <= 1.0001

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=100))
    def test_median_between_min_max(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                    min_size=5, max_size=100),
           st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                    min_size=5, max_size=100))
    def test_ks_statistic_bounded(self, a, b):
        result = ks_two_sample(a, b)
        assert 0.0 <= result.statistic <= 1.0
        assert 0.0 <= result.pvalue <= 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                    min_size=5, max_size=60))
    def test_ks_symmetric(self, a):
        shifted = [x + 0.1 for x in a]
        assert ks_two_sample(a, shifted).statistic == pytest.approx(
            ks_two_sample(shifted, a).statistic
        )


class TestWordWrapProperties:
    @given(st.text(alphabet=string.ascii_letters + " ", max_size=300),
           st.integers(min_value=8, max_value=60))
    def test_rows_respect_width(self, text, width):
        for row, _ in word_wrap(text, width):
            assert len(row) <= width

    @given(st.text(alphabet=string.ascii_letters + " ", max_size=300),
           st.integers(min_value=8, max_value=60))
    def test_content_preserved(self, text, width):
        rows = word_wrap(text, width)
        rebuilt = ""
        for row, continuation in rows:
            rebuilt += row if continuation else (" " + row)
        original_words = text.split()
        assert rebuilt.split() == [w for w in original_words if w]


class TestSenderIdProperties:
    @given(st.from_regex(r"\+?[0-9]{7,15}", fullmatch=True))
    def test_digit_strings_classify_as_phone(self, raw):
        sender = try_classify_sender_id(raw)
        assert sender is not None
        assert sender.digits == raw.lstrip("+")

    @given(st.from_regex(r"[A-Z]{3,11}", fullmatch=True))
    def test_letter_strings_classify_as_alnum(self, raw):
        sender = try_classify_sender_id(raw)
        assert sender is not None
        assert sender.normalized == raw.lower()

    @given(st.text(max_size=30))
    def test_classification_never_crashes(self, raw):
        try_classify_sender_id(raw)  # must not raise

    @given(st.from_regex(r"\+?[0-9() .-]{7,20}", fullmatch=True))
    def test_normalize_phone_idempotent(self, raw):
        once = normalize_phone(raw)
        assert normalize_phone(once) == once


class TestAnonymizationProperties:
    @given(st.text(alphabet=string.printable, max_size=200))
    def test_scrub_idempotent(self, text):
        once = scrub_text(text)
        assert scrub_text(once) == once

    @given(st.text(alphabet=string.ascii_lowercase + " ", max_size=100))
    def test_scrub_preserves_plain_words(self, text):
        assert scrub_text(text) == text


class TestExecutionEngineProperties:
    """The engine's invariants: stable cache keys, canonical merges,
    and idempotent (zero-recompute) second passes."""

    subjects = st.lists(st.text(min_size=1, max_size=20), min_size=1,
                        max_size=30, unique=True)
    services = st.sampled_from(["openai", "virustotal", "whois", "hlr"])

    @given(subjects, services)
    def test_cache_key_stability_and_isolation(self, subjects, service):
        # Same (service, subject) always lands on the same entry;
        # distinct subjects never collide — each gets its own value back.
        cache = EnrichmentCache()
        for index, subject in enumerate(subjects):
            cache.put_value(service, subject, index)
        for index, subject in enumerate(subjects):
            assert cache.get(service, subject).value == index
            assert cache.peek(service, subject).value == index

    @given(subjects)
    def test_cache_keys_do_not_collide_across_services(self, subjects):
        cache = EnrichmentCache()
        for subject in subjects:
            cache.put_value("whois", subject, "w:" + subject)
            cache.put_value("hlr", subject, "h:" + subject)
        for subject in subjects:
            assert cache.get("whois", subject).value == "w:" + subject
            assert cache.get("hlr", subject).value == "h:" + subject

    @given(st.permutations(list(range(6))))
    @settings(max_examples=12, deadline=None)
    def test_merge_order_canonical_under_shuffled_completion(self, order):
        # Tasks are *released* in an arbitrary permutation (so they
        # complete in that order), yet the merged result must always be
        # in submission order.
        events = [threading.Event() for _ in range(len(order))]

        def task(i):
            assert events[i].wait(timeout=10)
            return i

        with ThreadPool(len(order)) as pool:
            releaser = threading.Thread(
                target=lambda: [events[i].set() for i in order])
            releaser.start()
            merged = pool.map(task, range(len(order)))
            releaser.join()
        assert merged == list(range(len(order)))

    @given(st.lists(st.integers(), max_size=40),
           st.integers(min_value=2, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_thread_pool_equals_serial_pool(self, items, workers):
        serial = SerialPool().map(lambda x: x * 31 + 7, items)
        with ThreadPool(workers) as pool:
            threaded = pool.map(lambda x: x * 31 + 7, items)
        assert threaded == serial

    @given(st.lists(st.integers(), max_size=60),
           st.integers(min_value=1, max_value=9))
    def test_shard_round_robin_order_preserving_and_loss_free(self, items,
                                                              shards):
        # Tag every item with its submission index so duplicates stay
        # distinguishable, then check the partition/merge contract the
        # process pool's precompute path relies on.
        indexed = list(enumerate(items))
        chunks = shard(indexed, shards)
        assert len(chunks) == min(shards, len(indexed))
        sizes = [len(chunk) for chunk in chunks]
        if sizes:
            assert max(sizes) - min(sizes) <= 1  # balanced within one
        for chunk in chunks:
            indices = [index for index, _ in chunk]
            assert indices == sorted(indices)  # each shard a subsequence
        merged = canonical_merge(chunks)
        assert sorted(merged) == sorted(indexed)  # loss-free permutation
        assert shard(indexed, shards) == chunks  # deterministic repartition

    @given(st.sets(st.integers(min_value=0, max_value=11), min_size=1),
           st.integers(min_value=2, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_pool_merge_reraises_lowest_indexed_failure(self, failures,
                                                        workers):
        def task(i):
            if i in failures:
                raise ValueError(f"task-{i}")
            return i

        with ThreadPool(workers) as pool:
            with pytest.raises(ValueError) as excinfo:
                pool.map(task, range(12))
        assert str(excinfo.value) == f"task-{min(failures)}"

    @given(st.lists(st.tuples(services, st.text(min_size=1, max_size=12)),
                    min_size=1, max_size=40))
    def test_cache_idempotence_second_pass_computes_nothing(self, batch):
        cache = EnrichmentCache()
        computes = []

        def run_batch():
            for service, subject in batch:
                cache.lookup(service, subject,
                             lambda: computes.append((service, subject)))

        run_batch()
        first_pass = len(computes)
        assert first_pass == len(set(batch))  # one compute per unique key
        run_batch()
        assert len(computes) == first_pass  # second pass: zero computes


class TestBatchNormalizeProperties:
    """The columnar hot path's one-pass normalisation must agree with
    the per-record reference on arbitrary unicode — including inputs
    containing the batch sentinel's record separator, which take the
    per-record fallback."""

    texts = st.lists(st.text(max_size=80), max_size=25)

    @given(texts)
    def test_batch_normalize_matches_per_record(self, texts):
        assert batch_normalize(texts) == [normalize_text(t) for t in texts]

    @given(texts)
    def test_batch_squash_matches_per_record(self, texts):
        assert batch_squash(texts) == [squash(t) for t in texts]

    @given(st.lists(st.text(max_size=40), min_size=1, max_size=10),
           st.data())
    def test_sentinel_bearing_inputs_take_the_fallback(self, texts, data):
        # Splice the record separator into a random subset of inputs;
        # equality with the per-record path must survive regardless.
        spiked = []
        for text in texts:
            if data.draw(st.booleans()):
                cut = data.draw(st.integers(min_value=0,
                                            max_value=len(text)))
                text = text[:cut] + "\x1e" + text[cut:]
            spiked.append(text)
        assert batch_normalize(spiked) == [normalize_text(t)
                                           for t in spiked]
        assert batch_squash(spiked) == [squash(t) for t in spiked]


class TestHostileUnicodeProperties:
    """Quarantine-era guarantees on the NLP hot paths: the batch and
    per-record normalisers agree on *adversarial* unicode (zero-width
    splices, RTL overrides, replacement-char mojibake), and the length
    budgets keep even megabyte single-token inputs bounded."""

    _HOSTILE_ALPHABET = (string.ascii_letters + " .!?"
                         + "​‌‍⁠"   # zero-width
                         + "‪‫‭‮"   # bidi overrides
                         + "⁦⁧⁩"         # bidi isolates
                         + "�﻿")              # mojibake, BOM
    hostile_texts = st.lists(
        st.text(alphabet=_HOSTILE_ALPHABET, max_size=120), max_size=15)

    @given(hostile_texts)
    def test_batch_normalize_matches_per_record_on_hostile_unicode(
            self, texts):
        assert batch_normalize(texts) == [normalize_text(t) for t in texts]

    @given(hostile_texts)
    def test_batch_squash_matches_per_record_on_hostile_unicode(self, texts):
        assert batch_squash(texts) == [squash(t) for t in texts]

    @given(st.integers(min_value=MAX_NORMALIZE_CHARS - 2,
                       max_value=MAX_NORMALIZE_CHARS + 2))
    def test_normalize_truncates_exactly_at_the_budget(self, length):
        text = "a" * length
        expected = normalize_text(text[:MAX_NORMALIZE_CHARS])
        assert normalize_text(text) == expected
        assert batch_normalize([text]) == [expected]

    def test_megabyte_single_token_is_bounded_and_consistent(self):
        """A 1MB whitespace-free token — the classic regex-budget bomb —
        must terminate under the truncation cap on both paths, with the
        batch path agreeing with the reference."""
        bomb = "x" * 1_000_000
        texts = [bomb, "verify your account at example.com", bomb + " tail"]
        assert batch_normalize(texts) == [normalize_text(t) for t in texts]
        assert batch_squash(texts) == [squash(t) for t in texts]
        assert len(normalize_text(bomb)) <= MAX_NORMALIZE_CHARS

    def test_brand_scan_token_budget_is_enforced(self):
        """`find_all` scans at most its token cap: a brand mention
        buried beyond the budget is (deliberately) not found, and the
        scan completes instead of blowing up combinatorially."""
        recognizer = BrandRecognizer()
        in_budget = "junk " * 100 + " your PayPal account is locked"
        assert any(m.brand.lower() == "paypal"
                   for m in recognizer.find_all(in_budget))
        flood = "junk " * 25_000 + " your PayPal account is locked"
        assert recognizer.find_all(flood) == []

    @given(st.text(alphabet=_HOSTILE_ALPHABET, max_size=300))
    def test_sanitizer_screen_never_raises(self, body):
        from repro.core.quarantine import QUARANTINE_REASONS, Sanitizer

        report = RawReport(forum=Forum.REDDIT, post_id="p1", author="u",
                           posted_at=dt.datetime(2022, 9, 1), body=body)
        verdict = Sanitizer().screen(report)
        assert verdict is None or verdict.reason in QUARANTINE_REASONS


class TestDatasetKeyProperties:
    @given(st.text(max_size=100))
    def test_key_idempotent(self, text):
        key = normalise_message_key(text)
        assert normalise_message_key(key) == key

    @given(st.text(alphabet=string.ascii_letters + string.digits +
                   " .,!?@#éüñàößç", max_size=100))
    def test_key_case_insensitive(self, text):
        # Restricted to alphabets with two-way case mappings; one-way
        # mappings (Turkish dotless i) are out of scope for dedup keys.
        assert normalise_message_key(text.upper()) == \
            normalise_message_key(text.lower())


class TestStreamWatermarkProperties:
    """Re-presenting already-ingested material must be a no-op."""

    reports = st.lists(
        st.tuples(
            st.sampled_from(list(Forum)),
            st.from_regex(r"p[0-9]{1,4}", fullmatch=True),
            st.integers(min_value=0, max_value=120),  # days into window
        ),
        min_size=1, max_size=40,
    )

    @staticmethod
    def _collection(entries):
        # A post id names one post: re-sightings of the same (forum, id)
        # must carry the same timestamp, as real collectors guarantee.
        base = dt.datetime(2020, 1, 1)
        canonical_days = {}
        for forum, pid, days in entries:
            canonical_days.setdefault((forum, pid), days)
        result = CollectionResult()
        result.reports = [
            RawReport(forum=forum, post_id=pid, author="u",
                      posted_at=base + dt.timedelta(
                          days=canonical_days[(forum, pid)]),
                      body=f"report {pid}")
            for forum, pid, _ in entries
        ]
        return result

    @given(reports)
    @settings(max_examples=40, deadline=None)
    def test_unchanged_watermark_reingest_is_noop(self, entries):
        epoch = EpochWindow(index=0, start=dt.datetime(2020, 1, 1),
                            end=dt.datetime(2020, 3, 1))
        store = WatermarkStore()
        collection = self._collection(entries)
        first = store.filter_epoch(collection, epoch)
        store.commit(first, epoch)
        before = store.to_dict()

        again = store.filter_epoch(collection, epoch)
        assert again.result.reports == []
        # Every previously-kept report now reads as seen, and so do the
        # within-collection duplicates that were dropped the first time.
        assert again.seen_dropped == (len(first.result.reports)
                                      + first.seen_dropped)
        assert again.deferred == first.deferred
        # And committing the empty re-ingest changes nothing durable.
        store.commit(again, epoch)
        assert store.to_dict() == before

    @given(reports)
    @settings(max_examples=40, deadline=None)
    def test_filter_never_duplicates_a_post_id(self, entries):
        epoch = EpochWindow(index=0, start=dt.datetime(2020, 1, 1),
                            end=dt.datetime(2020, 3, 1))
        store = WatermarkStore()
        filtered = store.filter_epoch(self._collection(entries), epoch)
        keyed = [(r.forum, r.post_id) for r in filtered.result.reports]
        assert len(keyed) == len(set(keyed))


class TestStreamLedgerProperties:
    """The dedup division's *content* is order-insensitive: however the
    forums interleave their records, the same delta contents come out."""

    texts = st.lists(
        st.sampled_from(["msg alpha", "msg beta", "msg gamma",
                         "msg ALPHA", "msg  beta", "msg delta"]),
        min_size=1, max_size=25,
    )

    @staticmethod
    def _records(texts):
        forums = list(Forum)
        return [
            SmishingRecord(record_id=f"r{i:07d}",
                           forum=forums[i % len(forums)],
                           source_post_id=f"p{i}", text=text)
            for i, text in enumerate(texts)
        ]

    @given(texts, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_division_content_is_permutation_invariant(self, texts, rng):
        records = self._records(texts)
        shuffled = list(records)
        rng.shuffle(shuffled)

        base = DedupLedger().divide(records)
        other = DedupLedger().divide(shuffled)

        hashes = lambda division: {content_hash(r) for r in division.delta}
        assert hashes(base) == hashes(other)
        assert len(base.delta) == len(other.delta)
        assert len(base.duplicate_of) == len(other.duplicate_of)
        # Every duplicate points at a record carrying the same content.
        by_id = {r.record_id: r for r in records}
        for division in (base, other):
            for dup_id, canon_id in division.duplicate_of.items():
                assert content_hash(by_id[dup_id]) \
                    == content_hash(by_id[canon_id])

    @given(texts)
    @settings(max_examples=40, deadline=None)
    def test_commit_then_divide_finds_every_prior_sighting(self, texts):
        records = self._records(texts)
        ledger = DedupLedger()
        ledger.commit(ledger.divide(records).new_hashes)
        replay = ledger.divide(records)
        assert replay.delta == []
        assert set(replay.duplicate_of) == {r.record_id for r in records}


class TestPercentileDigestProperties:
    samples = st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=200,
    )

    @given(samples, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_quantiles_are_permutation_invariant(self, values, rng):
        from repro.obs.profile import PercentileDigest

        shuffled = list(values)
        rng.shuffle(shuffled)
        base, other = PercentileDigest(values), PercentileDigest(shuffled)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert base.quantile(q) == other.quantile(q)

    @given(samples)
    @settings(max_examples=60, deadline=None)
    def test_quantiles_are_monotone_and_bounded(self, values):
        from repro.obs.profile import PercentileDigest

        digest = PercentileDigest(values)
        qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0]
        answers = [digest.quantile(q) for q in qs]
        for lower, upper in zip(answers, answers[1:]):
            assert lower <= upper
        assert answers[0] == min(values)
        assert answers[-1] == max(values)
        assert all(digest.min <= a <= digest.max for a in answers)

    @given(samples, samples)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_concatenation(self, left_values, right_values):
        from repro.obs.profile import PercentileDigest

        merged = PercentileDigest(left_values)
        merged.merge(PercentileDigest(right_values))
        combined = PercentileDigest(left_values + right_values)
        assert merged.count == combined.count
        for q in (0.0, 0.5, 0.9, 1.0):
            assert merged.quantile(q) == combined.quantile(q)


class TestRunHistoryProperties:
    @staticmethod
    def _record(tag):
        return {"command": "stats", "config_digest": "abc",
                "wall_seconds": float(tag), "tag": tag}

    @given(max_entries=st.integers(min_value=1, max_value=12),
           appended=st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_growth_is_bounded_and_newest_retained(self, tmp_path_factory,
                                                   max_entries, appended):
        from repro.obs.history import RunHistory

        directory = tmp_path_factory.mktemp("history")
        history = RunHistory(directory, max_entries=max_entries)
        for tag in range(appended):
            history.append(self._record(tag))
        records = history.load()
        # Bounded growth: never more than max_entries on disk.
        assert len(records) == min(appended, max_entries)
        # Last-N retention: exactly the newest appends, in order.
        kept = [record["tag"] for record in records]
        assert kept == list(range(appended))[-max_entries:]
        # Sequences stay monotonically increasing across rotations.
        sequences = [record["sequence"] for record in records]
        assert sequences == sorted(sequences)
        assert sequences[-1] == appended - 1

    @given(appended=st.integers(min_value=2, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_reopened_store_continues_sequence(self, tmp_path_factory,
                                               appended):
        from repro.obs.history import RunHistory

        directory = tmp_path_factory.mktemp("history")
        for tag in range(appended):
            # A fresh handle per append: the sequence is a property of
            # the ledger on disk, not of the Python object.
            RunHistory(directory, max_entries=5).append(self._record(tag))
        latest = RunHistory(directory, max_entries=5).latest()
        assert latest["sequence"] == appended - 1


class TestServeProperties:
    """Serve-layer invariants: the bounded queue really is bounded, the
    admission front door is a pure function of (seed, arrival order),
    and shed + accepted always partitions submitted."""

    _ops = st.lists(
        st.one_of(
            st.tuples(st.just("offer"), st.integers(0, 10_000)),
            st.tuples(st.just("take"), st.integers(1, 8)),
        ),
        min_size=1, max_size=120,
    )

    @staticmethod
    def _queue_item(index):
        from repro.serve import QueueItem

        return QueueItem(index=index, request_id=f"q{index:07d}",
                         reporter=f"rep-{index % 7:05d}",
                         post_index=index, enqueued_at=float(index),
                         deadline=None)

    @given(capacity=st.integers(min_value=1, max_value=16), ops=_ops)
    @settings(max_examples=60, deadline=None)
    def test_queue_never_exceeds_capacity(self, capacity, ops):
        from repro.serve import BoundedQueue

        queue = BoundedQueue(capacity)
        offered = accepted = 0
        for op, value in ops:
            if op == "offer":
                offered += 1
                if queue.offer(self._queue_item(value)):
                    accepted += 1
            else:
                queue.take(value)
            assert 0 <= queue.depth <= capacity
        assert queue.max_depth <= capacity
        assert queue.offered == offered
        assert queue.refused == offered - accepted

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           profile=st.sampled_from(("steady", "burst", "spike")))
    @settings(max_examples=25, deadline=None)
    def test_admission_is_deterministic_in_seed_and_order(self, seed,
                                                          profile):
        from repro.serve import (
            AdmissionController,
            AdmissionPolicy,
            LoadSpec,
            generate_schedule,
        )
        from repro.services.base import SimClock

        spec = LoadSpec(profile=profile, requests=80, reporters=12,
                        seed=seed)
        schedule = generate_schedule(spec, n_posts=30)

        def _decide():
            clock = SimClock()
            control = AdmissionController(
                AdmissionPolicy(reporter_rate=0.1, reporter_burst=2.0),
                clock)
            decisions = []
            for arrival in schedule:
                clock.advance(max(0.0, arrival.at - clock.now))
                hint = control.admit_reporter(arrival.reporter)
                if hint is None:
                    control.record_accept()
                decisions.append(hint)
            return decisions, control.state_dict()

        first, first_state = _decide()
        again, again_state = _decide()
        assert first == again
        assert first_state == again_state

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           capacity=st.integers(min_value=1, max_value=12),
           batch=st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_shed_plus_accepted_equals_submitted(self, seed, capacity,
                                                 batch):
        """A pure front-door replay: every arrival is either accepted
        into the bounded queue or shed with a structured rejection —
        no third outcome, at any capacity or drain cadence."""
        from repro.serve import (
            AdmissionController,
            AdmissionPolicy,
            BoundedQueue,
            LoadSpec,
            generate_schedule,
        )
        from repro.services.base import SimClock

        spec = LoadSpec(profile="burst", requests=100, reporters=10,
                        seed=seed)
        clock = SimClock()
        control = AdmissionController(
            AdmissionPolicy(reporter_rate=0.05, reporter_burst=1.0), clock)
        queue = BoundedQueue(capacity)
        for arrival in generate_schedule(spec, n_posts=30):
            clock.advance(max(0.0, arrival.at - clock.now))
            if arrival.index % (batch + 1) == batch:
                queue.take(batch)
            hint = control.admit_reporter(arrival.reporter)
            if hint is not None:
                control.reject(arrival.request_id, arrival.reporter,
                               "rate_limited", "over budget",
                               mode="healthy", retry_after=hint)
                continue
            if not queue.offer(self._queue_item(arrival.index)):
                control.reject(arrival.request_id, arrival.reporter,
                               "queue_full", "bounded queue at capacity",
                               mode="healthy")
                continue
            control.record_accept()
        assert control.accepted + control.rejected == spec.requests
        assert len(control.rejections) == control.rejected
        assert (sum(control.rejected_by_reason.values())
                == control.rejected)


class TestStreamSessionNoopProperty:
    def test_rerun_of_caught_up_session_charges_nothing(self):
        """`run()` on a session with no pending epochs is a no-op:
        identical fingerprint, zero new charged calls on any service."""
        from repro.stream import StreamSession
        from repro.world.scenario import ScenarioConfig

        session = StreamSession.create(
            ScenarioConfig(seed=13, n_campaigns=4), epochs=2)
        first = session.run().fingerprint()
        charged = {name: meter.snapshot()["used"]
                   for name, meter in session.services.meters().items()}

        second = session.run().fingerprint()
        recharged = {name: meter.snapshot()["used"]
                     for name, meter in session.services.meters().items()}
        assert second == first
        assert recharged == charged
