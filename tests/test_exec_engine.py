"""Unit tests for ``repro.exec``: pools, the enrichment cache, the
engine's policy handling, and the telemetry capture of cache stats."""

import threading

import pytest

from repro.errors import (
    ConfigurationError,
    NotFound,
    RateLimitExceeded,
    ServiceUnavailable,
)
from repro.exec import (
    SEQUENTIAL,
    EnrichmentCache,
    EntryKind,
    ExecutionEngine,
    ExecutionPolicy,
    SerialPool,
    ThreadPool,
    WorkerPool,
    canonical_merge,
    make_pool,
)
from repro.faults import FaultPlan
from repro.faults.plan import ErrorRate, InjectedLatency
from repro.obs import Telemetry


class TestPools:
    def test_serial_pool_preserves_order(self):
        pool = SerialPool()
        assert pool.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]
        assert pool.workers == 1

    def test_thread_pool_preserves_order(self):
        with ThreadPool(4) as pool:
            assert pool.map(lambda x: x * 2, range(50)) == \
                [x * 2 for x in range(50)]

    def test_thread_pool_merge_ignores_completion_order(self):
        # Later-submitted tasks finish first (they wait on earlier ones
        # via events), yet the merged result stays in submission order.
        events = [threading.Event() for _ in range(4)]

        def task(i):
            if i < 3:
                events[i + 1].wait(timeout=5)
            events[i].set()
            return i

        with ThreadPool(4) as pool:
            events[3].set()
            assert pool.map(task, [0, 1, 2, 3]) == [0, 1, 2, 3]

    def test_thread_pool_raises_lowest_indexed_failure(self):
        def task(i):
            if i in (1, 3):
                raise ValueError(f"boom {i}")
            return i

        with ThreadPool(2) as pool:
            with pytest.raises(ValueError, match="boom 1"):
                pool.map(task, range(5))

    def test_make_pool_picks_implementation(self):
        assert isinstance(make_pool(1), SerialPool)
        assert isinstance(make_pool(0), SerialPool)
        pool = make_pool(3)
        assert isinstance(pool, ThreadPool)
        assert pool.workers == 3
        pool.close()

    def test_thread_pool_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ThreadPool(0)

    def test_canonical_merge_flattens_in_shard_order(self):
        assert canonical_merge([[1, 2], [], [3], [4, 5]]) == [1, 2, 3, 4, 5]

    def test_worker_pool_interface_is_abstract(self):
        with pytest.raises(NotImplementedError):
            WorkerPool().map(lambda x: x, [1])


class TestEnrichmentCache:
    def test_value_round_trip_counts_hit_and_miss(self):
        cache = EnrichmentCache()
        assert cache.get("whois", "a.com") is None
        cache.put_value("whois", "a.com", {"registrar": "x"})
        entry = cache.get("whois", "a.com")
        assert entry.is_value and entry.value == {"registrar": "x"}
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_peek_does_not_touch_counters(self):
        cache = EnrichmentCache()
        cache.put_value("hlr", "123", "rec")
        assert cache.peek("hlr", "123").is_value
        assert cache.peek("hlr", "456") is None
        assert cache.hits == 0 and cache.misses == 0

    def test_not_found_is_cached_as_an_answer(self):
        cache = EnrichmentCache()
        cache.put_not_found("whois", "ghost.com")
        entry = cache.get("whois", "ghost.com")
        assert entry.is_not_found and not entry.is_value

    def test_failure_entry_carries_gap_classification(self):
        cache = EnrichmentCache()
        cache.put_failure("gsb-transparency", "https://x.test",
                          kind="error", detail="blocked", attempts=3)
        entry = cache.get("gsb-transparency", "https://x.test")
        assert entry.is_failure
        assert entry.failure_kind == "error"
        assert entry.failure_detail == "blocked"
        assert entry.failure_attempts == 3

    def test_lookup_memoises_compute(self):
        cache = EnrichmentCache()
        calls = []

        def compute():
            calls.append(1)
            return "value"

        first = cache.lookup("vt", "u", compute)
        second = cache.lookup("vt", "u", compute)
        assert first.value == second.value == "value"
        assert len(calls) == 1

    def test_lookup_caches_not_found(self):
        cache = EnrichmentCache()

        def compute():
            raise NotFound("nope", service="whois")

        entry = cache.lookup("whois", "gone.com", compute)
        assert entry.is_not_found
        # Second lookup never re-runs compute (which would raise).
        assert cache.lookup("whois", "gone.com",
                            lambda: 1 / 0).is_not_found

    def test_lookup_caches_permanent_failure_and_reraises(self):
        cache = EnrichmentCache()

        def compute():
            raise ServiceUnavailable("dead", service="twitter",
                                     permanent=True)

        with pytest.raises(ServiceUnavailable):
            cache.lookup("twitter", "k", compute)
        entry = cache.peek("twitter", "k")
        assert entry.is_failure
        assert entry.failure_kind == "ServiceUnavailable"

    def test_lookup_never_caches_transient_failure(self):
        cache = EnrichmentCache()

        with pytest.raises(RateLimitExceeded):
            cache.lookup("vt", "k",
                         lambda: (_ for _ in ()).throw(
                             RateLimitExceeded("slow down", service="vt")))
        assert cache.peek("vt", "k") is None

    def test_eviction_is_oldest_first_and_counted(self):
        cache = EnrichmentCache(max_entries=2)
        cache.put_value("s", "a", 1)
        cache.put_value("s", "b", 2)
        cache.put_value("s", "c", 3)
        assert len(cache) == 2
        assert cache.peek("s", "a") is None
        assert cache.peek("s", "c").value == 3
        assert cache.evictions == 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            EnrichmentCache(max_entries=0)

    def test_stats_shape(self):
        cache = EnrichmentCache()
        cache.put_value("openai", "hello", "ann")
        cache.get("openai", "hello")
        cache.get("vt", "u")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["services"]["openai"]["hits"] == 1
        assert stats["services"]["vt"]["misses"] == 1
        assert stats["totals"]["stores"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_concurrent_lookups_converge_on_one_entry(self):
        cache = EnrichmentCache()
        results = []

        def compute_factory(i):
            return lambda: f"value-{i}"

        def worker(i):
            results.append(
                cache.lookup("svc", "subject", compute_factory(i)).value
            )

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Whichever compute won, every caller saw the same value.
        assert len(set(results)) == 1
        assert len(cache) == 1


class TestExecutionPolicy:
    def test_defaults_are_serial_with_cache(self):
        policy = ExecutionPolicy()
        assert policy.workers == 1 and policy.cache

    def test_sequential_reference_policy(self):
        assert SEQUENTIAL.workers == 1 and not SEQUENTIAL.cache

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(workers=0)

    def test_rejects_bad_cache_bound(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(cache_max_entries=0)


class TestExecutionEngine:
    def test_build_cache_honours_policy(self):
        assert ExecutionEngine(SEQUENTIAL).build_cache() is None
        cache = ExecutionEngine(ExecutionPolicy(cache=True)).build_cache()
        assert isinstance(cache, EnrichmentCache)

    def test_pools_match_worker_count(self):
        with ExecutionEngine(ExecutionPolicy(workers=4)) as engine:
            assert engine.enrichment_pool().workers == 4
            assert engine.collection_pool(None, ["Twitter"]).workers == 4

    def test_collection_degrades_on_forum_latency_injection(self):
        plan = FaultPlan(seed=1, rules=(InjectedLatency("Reddit", 0.5),))
        with ExecutionEngine(ExecutionPolicy(workers=4)) as engine:
            pool = engine.collection_pool(plan, ["Twitter", "Reddit"])
            assert pool.workers == 1
            # Enrichment precompute never touches the clock: unaffected.
            assert engine.enrichment_pool().workers == 4

    def test_collection_keeps_workers_for_service_latency(self):
        plan = FaultPlan(seed=1, rules=(InjectedLatency("openai", 0.5),
                                        ErrorRate("Reddit", 0.5)))
        with ExecutionEngine(ExecutionPolicy(workers=4)) as engine:
            pool = engine.collection_pool(plan, ["Twitter", "Reddit"])
            assert pool.workers == 4

    def test_close_shuts_down_pools(self):
        engine = ExecutionEngine(ExecutionPolicy(workers=2))
        pool = engine.enrichment_pool()
        engine.close()
        with pytest.raises(RuntimeError):
            pool.map(lambda x: x, [1])  # executor already shut down


class TestTelemetryCacheCapture:
    def test_capture_cache_snapshots_and_counts(self):
        telemetry = Telemetry.create()
        cache = EnrichmentCache()
        cache.put_value("openai", "text", "ann")
        cache.get("openai", "text")
        cache.get("openai", "other")
        telemetry.capture_cache(cache)
        assert telemetry.cache_snapshot["totals"]["hits"] == 1
        counters = {(c.name, c.labels.get("service")): c.value
                    for c in telemetry.metrics.counters()}
        assert counters[("cache.hits", "openai")] == 1
        assert counters[("cache.misses", "openai")] == 1
        table = telemetry.cache_table().to_text()
        assert "openai" in table and "50.0%" in table
        assert "Cache" in telemetry.summary()

    def test_disabled_telemetry_ignores_capture(self):
        telemetry = Telemetry(enabled=False)
        cache = EnrichmentCache()
        cache.put_value("s", "k", 1)
        telemetry.capture_cache(cache)
        assert telemetry.cache_snapshot == {}

    def test_trace_json_carries_cache_section(self):
        telemetry = Telemetry.create()
        cache = EnrichmentCache()
        cache.put_value("s", "k", 1)
        cache.get("s", "k")
        telemetry.capture_cache(cache)
        payload = telemetry.to_dict()
        assert payload["cache"]["totals"]["hits"] == 1
