"""Tests for enrichment and the end-to-end pipeline run."""

import pytest

from repro.services.shorteners import KNOWN_SHORTENERS
from repro.types import GsbStatus, SenderIdKind
from repro.world.infrastructure import FREE_HOSTING_WEIGHTS


class TestSenderEnrichment:
    def test_unique_senders_enriched(self, pipeline_run, enriched):
        keys = {
            r.sender.normalized for r in pipeline_run.dataset if r.sender
        }
        assert set(enriched.senders) == keys

    def test_phone_senders_have_hlr(self, enriched):
        for sender in enriched.senders.values():
            if sender.kind is SenderIdKind.PHONE_NUMBER:
                assert sender.hlr is not None
            else:
                assert sender.hlr is None

    def test_hlr_matches_world_ledger(self, world, enriched):
        checked = 0
        for sender in enriched.senders.values():
            if sender.hlr is None:
                continue
            issued = world.ledger.lookup(sender.normalized.lstrip("+"))
            if issued is not None and issued.original_operator:
                assert sender.hlr.original_operator == \
                    issued.original_operator
                checked += 1
        assert checked > 20


class TestUrlEnrichment:
    def test_unique_urls_enriched(self, pipeline_run, enriched):
        keys = {str(r.url) for r in pipeline_run.dataset if r.url}
        assert set(enriched.urls) == keys

    def test_shorteners_identified(self, enriched):
        short = [e for e in enriched.urls.values() if e.shortener]
        assert short
        for enrichment in short:
            assert enrichment.shortener in KNOWN_SHORTENERS
            # Shortener hosts are not sent to WHOIS/crt.sh (§3.3.3).
            assert enrichment.whois is None
            assert enrichment.certificates is None

    def test_direct_urls_get_tld_and_class(self, enriched):
        for enrichment in enriched.urls.values():
            if enrichment.shortener is None and not enrichment.is_whatsapp:
                assert enrichment.effective_tld
                assert enrichment.tld_class is not None

    def test_free_hosting_has_no_registrar(self, enriched):
        for enrichment in enriched.urls.values():
            if enrichment.effective_tld in FREE_HOSTING_WEIGHTS:
                assert enrichment.whois is None or \
                    enrichment.whois.registrar is None

    def test_vt_report_for_every_url(self, enriched):
        for enrichment in enriched.urls.values():
            assert enrichment.vt_report is not None
            assert enrichment.gsb_api is not None

    def test_gsb_transparency_half_not_queried(self, enriched):
        statuses = [e.gsb_transparency for e in enriched.urls.values()]
        blocked = sum(1 for s in statuses if s is GsbStatus.NOT_QUERIED)
        assert 0.3 < blocked / len(statuses) < 0.7

    def test_pdns_addresses_imply_ipinfo(self, enriched):
        for enrichment in enriched.urls.values():
            if enrichment.pdns_addresses:
                assert len(enrichment.ip_info) == \
                    len(set(a.value for a in enrichment.pdns_addresses))


class TestAnnotations:
    def test_every_record_annotated(self, pipeline_run, enriched):
        for record in pipeline_run.dataset:
            assert enriched.labels_for(record) is not None

    def test_annotated_dataset_view(self, enriched):
        annotated = enriched.annotated_dataset()
        assert all(r.annotations is not None for r in annotated)

    def test_scam_type_accuracy_against_truth(self, world, pipeline_run,
                                              enriched):
        good = total = 0
        for record in pipeline_run.dataset:
            event = (world.event(record.truth_event_id)
                     if record.truth_event_id else None)
            if event is None:
                continue
            labels = enriched.labels_for(record)
            total += 1
            if labels.scam_type is event.scam_type:
                good += 1
        assert total > 300
        assert good / total > 0.75  # GPT-4o-level agreement (§3.4)

    def test_language_accuracy_against_truth(self, world, pipeline_run,
                                             enriched):
        good = total = 0
        for record in pipeline_run.dataset:
            event = (world.event(record.truth_event_id)
                     if record.truth_event_id else None)
            if event is None:
                continue
            labels = enriched.labels_for(record)
            total += 1
            if labels.language == event.language:
                good += 1
        assert good / total > 0.8


class TestPipelineRun:
    def test_run_is_reproducible(self, world, pipeline_run):
        from repro.core.pipeline import run_pipeline
        second = run_pipeline(world)
        assert len(second.dataset) == len(pipeline_run.dataset)
        assert second.dataset[0].text == pipeline_run.dataset[0].text

    def test_funnel_sane(self, pipeline_run):
        assert len(pipeline_run.collection.reports) > len(pipeline_run.dataset)
        assert len(pipeline_run.dataset) > 100

    def test_unique_leq_total(self, pipeline_run):
        dataset = pipeline_run.dataset
        assert len(dataset.unique_messages()) <= len(dataset)
        assert len(dataset.unique_senders()) <= len(dataset)
