"""Tests for sender-ID classification (§3.3.1 / §4.1)."""

import pytest

from repro.errors import ValidationError
from repro.sms.senderid import (
    classify_sender_id,
    is_redacted,
    normalize_phone,
    try_classify_sender_id,
)
from repro.types import SenderIdKind


class TestPhoneNumbers:
    def test_e164(self):
        sender = classify_sender_id("+447700900123")
        assert sender.kind is SenderIdKind.PHONE_NUMBER
        assert sender.digits == "447700900123"

    def test_formatted_number(self):
        sender = classify_sender_id("+44 7700 900-123")
        assert sender.kind is SenderIdKind.PHONE_NUMBER
        assert sender.normalized == "+447700900123"

    def test_parenthesised_us_number(self):
        sender = classify_sender_id("(555) 010-4477")
        assert sender.kind is SenderIdKind.PHONE_NUMBER

    def test_shortcode(self):
        sender = classify_sender_id("7726")
        assert sender.kind is SenderIdKind.PHONE_NUMBER
        assert sender.is_shortcode

    def test_long_number_not_shortcode(self):
        assert not classify_sender_id("+447700900123").is_shortcode

    def test_spoofed_too_long_still_phone_shaped(self):
        # More digits than any plan allows — phone-shaped, HLR will call
        # it Bad Format (Table 3).
        sender = classify_sender_id("+9198765432101234567")
        assert sender.kind is SenderIdKind.PHONE_NUMBER

    def test_absurdly_long_rejected(self):
        with pytest.raises(ValidationError):
            classify_sender_id("9" * 40)


class TestEmails:
    def test_icloud_email(self):
        sender = classify_sender_id("scammer123@icloud.com")
        assert sender.kind is SenderIdKind.EMAIL

    def test_email_normalized_lowercase(self):
        sender = classify_sender_id("Foo.Bar@Gmail.COM")
        assert sender.normalized == "foo.bar@gmail.com"

    def test_digits_empty_for_email(self):
        assert classify_sender_id("a@b.com").digits == ""


class TestAlphanumeric:
    def test_brand_shortcode(self):
        sender = classify_sender_id("SBIBNK")
        assert sender.kind is SenderIdKind.ALPHANUMERIC

    def test_mixed_alnum(self):
        assert classify_sender_id("INFO62").kind is SenderIdKind.ALPHANUMERIC

    def test_gov_uk_style(self):
        assert classify_sender_id("GOV.UK").kind is SenderIdKind.ALPHANUMERIC

    def test_eleven_char_limit(self):
        assert classify_sender_id("ABCDEFGHIJK").kind is SenderIdKind.ALPHANUMERIC
        with pytest.raises(ValidationError):
            classify_sender_id("ABCDEFGHIJKL")  # 12 chars

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            classify_sender_id("   ")


class TestTryClassify:
    def test_returns_none_on_garbage(self):
        assert try_classify_sender_id("!!!???") is None

    def test_returns_sender_on_valid(self):
        assert try_classify_sender_id("7726") is not None


class TestNormalizePhone:
    def test_keeps_plus(self):
        assert normalize_phone("+44 7700") == "+447700"

    def test_strips_everything_else(self):
        assert normalize_phone("(0044) 77.00") == "0044" + "7700"


class TestRedaction:
    def test_starred_number(self):
        assert is_redacted("+44 7*** ******")

    def test_x_masked(self):
        assert is_redacted("XXXXXX")

    def test_normal_number_not_redacted(self):
        assert not is_redacted("+447700900123")

    def test_brand_code_not_redacted(self):
        assert not is_redacted("SBIBNK")

    def test_empty_is_redacted(self):
        assert is_redacted("")
