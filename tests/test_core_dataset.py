"""Tests for the dataset container and persistence."""

import datetime as dt

import pytest

from repro.core.dataset import (
    SmishingDataset,
    SmishingRecord,
    normalise_message_key,
)
from repro.net.url import parse_url
from repro.sms.message import AnnotationLabels
from repro.sms.senderid import classify_sender_id
from repro.types import Forum, LurePrinciple, ScamType
from repro.utils.timeutils import ParsedTimestamp


def make_record(record_id="r1", text="Test message with evil.com/x",
                forum=Forum.TWITTER, sender="+447700900123"):
    return SmishingRecord(
        record_id=record_id,
        forum=forum,
        source_post_id="p1",
        text=text,
        sender=classify_sender_id(sender) if sender else None,
        timestamp=ParsedTimestamp(
            value=dt.datetime(2022, 5, 1, 10, 30), has_date=True,
            has_time=True, raw="2022-05-01 10:30",
        ),
        url=parse_url("https://evil.com/x"),
        annotations=AnnotationLabels(
            scam_type=ScamType.BANKING, language="en", brand="Chase",
            lures=frozenset({LurePrinciple.AUTHORITY}),
        ),
        truth_event_id="ev1",
    )


class TestMessageKey:
    def test_case_and_whitespace_folded(self):
        assert normalise_message_key("Hello  WORLD") == \
            normalise_message_key("hello world")

    def test_digits_preserved(self):
        assert normalise_message_key("pay 100") != \
            normalise_message_key("pay 200")


class TestRecord:
    def test_accessors(self):
        record = make_record()
        assert record.scam_type is ScamType.BANKING
        assert record.language == "en"
        assert record.brand == "Chase"
        assert record.has_full_timestamp

    def test_json_round_trip(self):
        record = make_record()
        restored = SmishingRecord.from_json_dict(record.to_json_dict())
        assert restored.record_id == record.record_id
        assert restored.text == record.text
        assert restored.sender.normalized == record.sender.normalized
        assert str(restored.url) == str(record.url)
        assert restored.annotations == record.annotations
        assert restored.timestamp.value == record.timestamp.value

    def test_json_round_trip_minimal(self):
        record = SmishingRecord(
            record_id="r2", forum=Forum.REDDIT, source_post_id="p",
            text="bare text",
        )
        restored = SmishingRecord.from_json_dict(record.to_json_dict())
        assert restored.sender is None
        assert restored.url is None
        assert restored.annotations is None


class TestDataset:
    def make_dataset(self):
        return SmishingDataset([
            make_record("r1", "message one evil.com/x"),
            make_record("r2", "MESSAGE ONE evil.com/x"),  # dup by key
            make_record("r3", "message two evil.com/x",
                        forum=Forum.REDDIT, sender="7726"),
        ])

    def test_len_iter_getitem(self):
        dataset = self.make_dataset()
        assert len(dataset) == 3
        assert dataset[0].record_id == "r1"
        assert len(list(dataset)) == 3

    def test_unique_counts(self):
        dataset = self.make_dataset()
        assert len(dataset.unique_messages()) == 2
        assert len(dataset.unique_senders()) == 2
        assert len(dataset.unique_urls()) == 1

    def test_forum_counts(self):
        dataset = self.make_dataset()
        counts = dataset.forum_counts(Forum.TWITTER, posts=10, images=4)
        assert counts.posts == 10
        assert counts.messages_total == 2
        assert counts.messages_unique == 1
        assert counts.senders_unique == 1

    def test_jsonl_round_trip(self, tmp_path):
        dataset = self.make_dataset()
        path = tmp_path / "data.jsonl"
        written = dataset.save_jsonl(path)
        assert written == 3
        restored = SmishingDataset.load_jsonl(path)
        assert len(restored) == 3
        assert restored[0].text == dataset[0].text

    def test_with_annotations(self):
        dataset = SmishingDataset([
            SmishingRecord(record_id="r1", forum=Forum.TWITTER,
                           source_post_id="p", text="x"),
        ])
        labels = AnnotationLabels(
            scam_type=ScamType.SPAM, language="en", brand=None,
            lures=frozenset(),
        )
        updated = dataset.with_annotations({"r1": labels})
        assert updated[0].annotations == labels
        assert dataset[0].annotations is None  # original untouched
