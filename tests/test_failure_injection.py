"""Failure injection: the pipeline under broken external conditions."""

import datetime as dt

import pytest

from repro.core.collection import (
    RedditCollector,
    TwitterCollector,
    collect_all,
)
from repro.core.config import CollectionWindows, PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.errors import ConfigurationError, ServiceUnavailable
from repro.faults import (
    ErrorRate,
    FaultPlan,
    FaultProxy,
    InjectedLatency,
    OutageWindow,
    TransientBurst,
    build_fault_plan,
)
from repro.forums.base import Post
from repro.forums.base_meter import ForumMeter
from repro.forums.reddit import RedditService
from repro.forums.twitter import ACADEMIC_API_SHUTDOWN, TwitterService
from repro.obs import Telemetry
from repro.resilience import BreakerState, CircuitBreaker, RetryPolicy, call_with_policy
from repro.services.base import ServiceMeter, SimClock
from repro.types import Forum
from repro.world.scenario import ScenarioConfig, build_world


def _small_world(seed=31):
    return build_world(ScenarioConfig(seed=seed, n_campaigns=15))


def _tweet(post_id, when, body="smishing report"):
    return Post(post_id=post_id, forum=Forum.TWITTER, author="u",
                created_at=when, body=body)


def _populated_twitter(meter=None, n=30):
    service = TwitterService(meter=meter)
    base = dt.datetime(2020, 1, 1)
    for i in range(n):
        service.add_post(_tweet(f"t{i}", base + dt.timedelta(days=i * 10)))
    return service


class TestTwitterQuotaExhaustion:
    def test_partial_results_preserved(self):
        # A tiny request cap dies mid-sweep; everything fetched before the
        # cap must survive, and the error must be recorded.
        service = _populated_twitter(
            meter=ForumMeter(service="tw", cap=3), n=40
        )
        service.page_size = 5
        collector = TwitterCollector(service, PipelineConfig())
        result = collector.collect()
        assert result.api_errors
        assert any("cap" in e for e in result.api_errors)
        assert 0 < len(result.reports) < 40

    def test_generous_quota_collects_everything(self):
        service = _populated_twitter(meter=ForumMeter(service="tw", cap=500))
        collector = TwitterCollector(service, PipelineConfig())
        result = collector.collect()
        assert not result.api_errors
        assert len(result.reports) == 30


class TestApiShutdownMidCollection:
    def test_shutdown_recorded_not_fatal(self):
        service = _populated_twitter()
        # Force the consumer to query after the shutdown moment.
        service.query_time = ACADEMIC_API_SHUTDOWN
        collector = TwitterCollector(service, PipelineConfig())
        result = collector.collect()
        # The collector sets query_time itself before sweeping, so it
        # still collects; simulate a consumer stuck past shutdown by
        # freezing query_time through a wrapper.
        assert result.reports or result.api_errors

    def test_direct_post_shutdown_query_fails_permanently(self):
        from repro.errors import ServiceUnavailable
        service = _populated_twitter()
        service.query_time = ACADEMIC_API_SHUTDOWN + dt.timedelta(days=1)
        with pytest.raises(ServiceUnavailable) as excinfo:
            service.full_archive_search(
                "smishing", since=dt.datetime(2020, 1, 1),
                until=dt.datetime(2021, 1, 1),
            )
        assert excinfo.value.permanent
        assert not excinfo.value.retryable


class TestRedditQuota:
    def test_partial_keyword_sweep(self):
        service = RedditService(meter=ForumMeter(service="rd", cap=1))
        base = dt.datetime(2020, 6, 1)
        for i in range(5):
            service.add_post(Post(
                post_id=f"r{i}", forum=Forum.REDDIT, author="u",
                created_at=base, body="smishing here", subreddit="Scams",
            ))
        collector = RedditCollector(service, PipelineConfig())
        result = collector.collect()
        # First keyword's single page succeeded, then the cap killed the
        # remaining keywords — partial data plus a recorded error.
        assert result.api_errors
        assert len(result.reports) == 5


class TestWorldScaleResilience:
    def test_collect_all_with_capped_twitter(self, world):
        # Replace the world's Twitter meter with a tight cap: the global
        # collection still completes and the other forums are unaffected.
        original_meter = world.twitter.meter
        world.twitter.meter = ForumMeter(service="tw", cap=2)
        try:
            result = collect_all(world.forums, PipelineConfig())
        finally:
            world.twitter.meter = original_meter
        assert result.api_errors
        by_forum = result.by_forum()
        assert by_forum.get(Forum.SMISHTANK)
        assert by_forum.get(Forum.PASTEBIN)

    def test_vision_quota_surfaces_cleanly(self, world):
        from repro.errors import QuotaExhausted
        from repro.nlp.openai_api import OpenAiEndpoint, ANNOTATION_PROMPT
        endpoint = OpenAiEndpoint(quota=2, rate_per_second=1000)
        endpoint.annotate_message(ANNOTATION_PROMPT,
                                  {"id": "1", "message": "a"})
        endpoint.annotate_message(ANNOTATION_PROMPT,
                                  {"id": "2", "message": "b"})
        with pytest.raises(QuotaExhausted):
            endpoint.annotate_message(ANNOTATION_PROMPT,
                                      {"id": "3", "message": "c"})


class _PingService:
    """A minimal metered service for proxy-level tests."""

    def __init__(self, clock=None):
        self.meter = ServiceMeter(service="ping", clock=clock or SimClock(),
                                  rate=1000.0, burst=2000.0)

    def ping(self):
        self.meter.charge()
        return "pong"

    def add_post(self):  # excluded by default: never draws faults
        return "ingested"


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan(seed=1)
        assert plan.is_empty
        assert not plan.affects("ping")
        assert plan.describe() == "none"

    def test_error_rate_deterministic(self):
        plan = FaultPlan(seed=9, rules=(ErrorRate("ping", 0.5),))
        clock = SimClock()

        def fate(index):
            try:
                plan.apply("ping", index, clock)
                return True
            except ServiceUnavailable:
                return False

        first = [fate(i) for i in range(200)]
        second = [fate(i) for i in range(200)]
        assert first == second
        assert 60 < sum(first) < 140  # roughly half succeed

    def test_error_rate_varies_with_seed(self):
        clock = SimClock()

        def fates(seed):
            plan = FaultPlan(seed=seed, rules=(ErrorRate("ping", 0.5),))
            out = []
            for i in range(100):
                try:
                    plan.apply("ping", i, clock)
                    out.append(True)
                except ServiceUnavailable:
                    out.append(False)
            return out

        assert fates(1) != fates(2)

    def test_burst_covers_exact_call_range(self):
        plan = FaultPlan(rules=(TransientBurst("ping", after_calls=2,
                                               count=3),))
        clock = SimClock()
        outcomes = []
        for i in range(7):
            try:
                plan.apply("ping", i, clock)
                outcomes.append("ok")
            except ServiceUnavailable as exc:
                assert exc.retryable
                outcomes.append("fail")
        assert outcomes == ["ok", "ok", "fail", "fail", "fail", "ok", "ok"]

    def test_outage_window_follows_clock(self):
        plan = FaultPlan(rules=(OutageWindow("ping", start=10.0, end=20.0),))
        clock = SimClock()
        plan.apply("ping", 0, clock)  # t=0: fine
        clock.advance(15.0)
        with pytest.raises(ServiceUnavailable) as excinfo:
            plan.apply("ping", 1, clock)
        assert excinfo.value.retryable
        clock.advance(5.0)
        plan.apply("ping", 2, clock)  # t=20: window is half-open

    def test_permanent_outage_not_retryable(self):
        plan = FaultPlan(rules=(OutageWindow("ping", start=0.0, end=1e9,
                                             permanent=True),))
        with pytest.raises(ServiceUnavailable) as excinfo:
            plan.apply("ping", 0, SimClock())
        assert not excinfo.value.retryable

    def test_latency_advances_clock(self):
        plan = FaultPlan(rules=(InjectedLatency("ping", 2.5),))
        clock = SimClock()
        plan.apply("ping", 0, clock)
        assert clock.now == pytest.approx(2.5)

    def test_profiles_build(self):
        assert build_fault_plan("none", seed=1).is_empty
        assert build_fault_plan(None, seed=1).is_empty
        assert not build_fault_plan("flaky", seed=1).is_empty
        assert not build_fault_plan("outage", seed=1).is_empty
        with pytest.raises(ConfigurationError):
            build_fault_plan("mayhem", seed=1)

    def test_rejects_non_rules(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(rules=("not a rule",))


class TestFaultProxy:
    def test_passthrough_when_service_unaffected(self):
        service = _PingService()
        proxy = FaultProxy(service, FaultPlan(rules=(ErrorRate("other",
                                                               1.0),)))
        assert proxy.ping() == "pong"
        assert proxy.fault_calls == 1

    def test_injects_before_the_meter_charges(self):
        service = _PingService()
        proxy = FaultProxy(service, FaultPlan(rules=(ErrorRate("ping",
                                                               1.0),)))
        with pytest.raises(ServiceUnavailable):
            proxy.ping()
        assert service.meter.used == 0  # the request never went out

    def test_attribute_reads_writes_and_len_forward(self):
        meter = ForumMeter(service="tw", cap=3)
        service = _populated_twitter(meter=meter, n=4)
        proxy = FaultProxy(service, FaultPlan(), service="Twitter",
                           clock=SimClock())
        proxy.page_size = 2
        assert service.page_size == 2
        assert proxy.meter is meter
        assert len(proxy) == 4

    def test_excluded_methods_draw_no_faults(self):
        service = _PingService()
        proxy = FaultProxy(service, FaultPlan(rules=(ErrorRate("ping",
                                                               1.0),)))
        assert proxy.add_post() == "ingested"
        assert proxy.fault_calls == 0

    def test_call_counter_is_per_instance(self):
        plan = FaultPlan(rules=(TransientBurst("ping", after_calls=1,
                                               count=1),))
        a = FaultProxy(_PingService(), plan)
        b = FaultProxy(_PingService(), plan)
        assert a.ping() == "pong"
        with pytest.raises(ServiceUnavailable):
            a.ping()
        assert b.ping() == "pong"  # b's counter is its own


class TestBreakerTripAndRecover:
    def test_outage_trips_breaker_then_recovery_closes_it(self):
        clock = SimClock()
        service = _PingService(clock=clock)
        proxy = FaultProxy(
            service, FaultPlan(rules=(OutageWindow("ping", 0.0, 50.0),)),
        )
        breaker = CircuitBreaker("ping", clock, failure_threshold=3,
                                 cooldown=20.0)
        policy = RetryPolicy(max_attempts=1, jitter=0.0)
        for _ in range(3):
            with pytest.raises(ServiceUnavailable):
                call_with_policy(proxy.ping, policy=policy, clock=clock,
                                 breaker=breaker)
        assert breaker.state is BreakerState.OPEN
        from repro.errors import CircuitOpen
        with pytest.raises(CircuitOpen):
            call_with_policy(proxy.ping, policy=policy, clock=clock,
                             breaker=breaker)
        # The outage ends and the cool-down elapses: the half-open probe
        # succeeds and the breaker closes again.
        clock.advance(60.0)
        assert call_with_policy(proxy.ping, policy=policy, clock=clock,
                                breaker=breaker) == "pong"
        assert breaker.state is BreakerState.CLOSED
        assert service.meter.used == 1  # only the probe reached the service


class TestCollectionUnderInjectedFaults:
    def test_reddit_outage_filed_as_limitation(self):
        # Satellite fix: a Reddit outage must not crash collect(); it is
        # filed as a limitation like the other four forums.
        service = RedditService()
        base = dt.datetime(2020, 6, 1)
        for i in range(5):
            service.add_post(Post(
                post_id=f"r{i}", forum=Forum.REDDIT, author="u",
                created_at=base, body="smishing here", subreddit="Scams",
            ))
        proxy = FaultProxy(
            service, FaultPlan(rules=(ErrorRate("Reddit", 1.0),)),
            service="Reddit", clock=SimClock(),
        )
        result = RedditCollector(proxy, PipelineConfig()).collect()
        assert result.limitations
        assert result.limitations[0].kind == "unavailable"
        assert result.reports == []

    def test_collect_all_survives_forum_chaos(self, world):
        plan = FaultPlan(seed=5, rules=(ErrorRate("Reddit", 1.0),
                                        ErrorRate("Twitter", 0.5)))
        forums = {
            forum: FaultProxy(svc, plan, service=forum.value,
                              clock=world.clock)
            for forum, svc in world.forums.items()
        }
        result = collect_all(forums, PipelineConfig())
        assert result.limitations
        by_forum = result.by_forum()
        assert by_forum.get(Forum.SMISHTANK)
        assert by_forum.get(Forum.PASTEBIN)


class TestEnrichmentUnderInjectedFaults:
    def test_midrun_outage_preserves_partial_enrichment(self):
        # VirusTotal is down for the whole enrichment run: the pipeline
        # completes, every other field keeps its data, and every missing
        # vt_report is accounted for by a structured gap.
        world = _small_world()
        telemetry = Telemetry.create(clock=world.clock)
        plan = FaultPlan(seed=31, rules=(OutageWindow("virustotal", 0.0,
                                                      1e9),))
        run = run_pipeline(world, telemetry=telemetry, fault_plan=plan)
        assert len(run.dataset) > 0
        urls = run.enriched.urls
        assert urls
        assert all(e.vt_report is None for e in urls.values())
        assert all(e.gsb_api is not None for e in urls.values())
        assert any(e.whois is not None for e in urls.values())
        vt_gaps = [g for g in run.enriched.gaps if g.service == "virustotal"]
        assert len(vt_gaps) == len(urls)
        assert {g.kind for g in vt_gaps} <= {"unavailable", "circuit_open"}
        assert all(g.field == "vt_report" for g in vt_gaps)
        # Retry/breaker counters are visible in the run's telemetry.
        metrics = telemetry.metrics
        assert metrics.value("resilience.retries", service="virustotal") > 0
        assert metrics.value("resilience.breaker_opens",
                             service="virustotal") >= 1
        assert telemetry.breaker_snapshots["virustotal"]["opens"] >= 1
        assert "Resilience" in telemetry.summary()

    def test_short_outage_ridden_out_by_retries(self):
        # A blip shorter than the retry budget: backoff rides it out, so
        # every record still gets its annotation — retries, zero gaps.
        world = _small_world()
        telemetry = Telemetry.create(clock=world.clock)
        plan = FaultPlan(seed=31, rules=(
            TransientBurst("openai", after_calls=0, count=3),
        ))
        run = run_pipeline(world, telemetry=telemetry, fault_plan=plan)
        assert all(run.enriched.labels_for(r) is not None
                   for r in run.dataset)
        assert not [g for g in run.enriched.gaps if g.service == "openai"]
        assert telemetry.metrics.value("resilience.retries",
                                       service="openai") > 0

    def test_same_seed_and_plan_identical_gap_lists(self):
        runs = []
        for _ in range(2):
            world = _small_world(seed=47)
            plan = build_fault_plan("flaky", seed=47)
            runs.append(run_pipeline(world, fault_plan=plan))
        gaps_a, gaps_b = runs[0].enriched.gaps, runs[1].enriched.gaps
        assert gaps_a  # the flaky profile does leave gaps
        assert gaps_a == gaps_b
        assert repr(gaps_a) == repr(gaps_b)  # byte-identical

    def test_different_seed_changes_gaps(self):
        def gaps_for(seed):
            world = _small_world(seed=seed)
            return run_pipeline(
                world, fault_plan=build_fault_plan("flaky", seed=seed)
            ).enriched.gaps

        assert gaps_for(3) != gaps_for(4)

    def test_clean_run_has_no_infrastructure_gaps(self, pipeline_run):
        # Without injected faults the only gaps are the GSB transparency
        # report's deterministic anti-automation blocks (§3.3.4) — now
        # recorded instead of silently swallowed.
        services = {g.service for g in pipeline_run.enriched.gaps}
        assert services <= {"gsb-transparency"}
        assert all(g.kind == "unavailable"
                   for g in pipeline_run.enriched.gaps)
        # ...and they agree exactly with the NOT_QUERIED statuses.
        blocked = sum(1 for e in pipeline_run.enriched.urls.values()
                      if e.gsb_transparency.name == "NOT_QUERIED")
        assert len(pipeline_run.enriched.gaps) == blocked


class TestCliChaos:
    def test_stats_under_flaky_profile(self, capsys):
        from repro.cli import main
        assert main(["--campaigns", "10", "--seed", "3", "stats",
                     "--quiet", "--faults", "flaky"]) == 0
        out = capsys.readouterr().out
        assert "faults=flaky" in out
        assert "gaps=" in out
        assert "Enrichment gaps:" in out

    def test_faults_flag_accepted_after_subcommand(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["stats", "--faults", "outage"])
        assert args.faults == "outage"

    def test_default_profile_is_none(self):
        from repro.cli import build_parser
        assert build_parser().parse_args(["stats"]).faults == "none"
