"""Failure injection: the pipeline under broken external conditions."""

import datetime as dt

import pytest

from repro.core.collection import (
    RedditCollector,
    TwitterCollector,
    collect_all,
)
from repro.core.config import CollectionWindows, PipelineConfig
from repro.forums.base import Post
from repro.forums.base_meter import ForumMeter
from repro.forums.reddit import RedditService
from repro.forums.twitter import ACADEMIC_API_SHUTDOWN, TwitterService
from repro.types import Forum


def _tweet(post_id, when, body="smishing report"):
    return Post(post_id=post_id, forum=Forum.TWITTER, author="u",
                created_at=when, body=body)


def _populated_twitter(meter=None, n=30):
    service = TwitterService(meter=meter)
    base = dt.datetime(2020, 1, 1)
    for i in range(n):
        service.add_post(_tweet(f"t{i}", base + dt.timedelta(days=i * 10)))
    return service


class TestTwitterQuotaExhaustion:
    def test_partial_results_preserved(self):
        # A tiny request cap dies mid-sweep; everything fetched before the
        # cap must survive, and the error must be recorded.
        service = _populated_twitter(
            meter=ForumMeter(service="tw", cap=3), n=40
        )
        service.page_size = 5
        collector = TwitterCollector(service, PipelineConfig())
        result = collector.collect()
        assert result.api_errors
        assert any("cap" in e for e in result.api_errors)
        assert 0 < len(result.reports) < 40

    def test_generous_quota_collects_everything(self):
        service = _populated_twitter(meter=ForumMeter(service="tw", cap=500))
        collector = TwitterCollector(service, PipelineConfig())
        result = collector.collect()
        assert not result.api_errors
        assert len(result.reports) == 30


class TestApiShutdownMidCollection:
    def test_shutdown_recorded_not_fatal(self):
        service = _populated_twitter()
        # Force the consumer to query after the shutdown moment.
        service.query_time = ACADEMIC_API_SHUTDOWN
        collector = TwitterCollector(service, PipelineConfig())
        result = collector.collect()
        # The collector sets query_time itself before sweeping, so it
        # still collects; simulate a consumer stuck past shutdown by
        # freezing query_time through a wrapper.
        assert result.reports or result.api_errors

    def test_direct_post_shutdown_query_fails_permanently(self):
        from repro.errors import ServiceUnavailable
        service = _populated_twitter()
        service.query_time = ACADEMIC_API_SHUTDOWN + dt.timedelta(days=1)
        with pytest.raises(ServiceUnavailable) as excinfo:
            service.full_archive_search(
                "smishing", since=dt.datetime(2020, 1, 1),
                until=dt.datetime(2021, 1, 1),
            )
        assert excinfo.value.permanent
        assert not excinfo.value.retryable


class TestRedditQuota:
    def test_partial_keyword_sweep(self):
        service = RedditService(meter=ForumMeter(service="rd", cap=1))
        base = dt.datetime(2020, 6, 1)
        for i in range(5):
            service.add_post(Post(
                post_id=f"r{i}", forum=Forum.REDDIT, author="u",
                created_at=base, body="smishing here", subreddit="Scams",
            ))
        collector = RedditCollector(service, PipelineConfig())
        result = collector.collect()
        # First keyword's single page succeeded, then the cap killed the
        # remaining keywords — partial data plus a recorded error.
        assert result.api_errors
        assert len(result.reports) == 5


class TestWorldScaleResilience:
    def test_collect_all_with_capped_twitter(self, world):
        # Replace the world's Twitter meter with a tight cap: the global
        # collection still completes and the other forums are unaffected.
        original_meter = world.twitter.meter
        world.twitter.meter = ForumMeter(service="tw", cap=2)
        try:
            result = collect_all(world.forums, PipelineConfig())
        finally:
            world.twitter.meter = original_meter
        assert result.api_errors
        by_forum = result.by_forum()
        assert by_forum.get(Forum.SMISHTANK)
        assert by_forum.get(Forum.PASTEBIN)

    def test_vision_quota_surfaces_cleanly(self, world):
        from repro.errors import QuotaExhausted
        from repro.nlp.openai_api import OpenAiEndpoint, ANNOTATION_PROMPT
        endpoint = OpenAiEndpoint(quota=2, rate_per_second=1000)
        endpoint.annotate_message(ANNOTATION_PROMPT,
                                  {"id": "1", "message": "a"})
        endpoint.annotate_message(ANNOTATION_PROMPT,
                                  {"id": "2", "message": "b"})
        with pytest.raises(QuotaExhausted):
            endpoint.annotate_message(ANNOTATION_PROMPT,
                                      {"id": "3", "message": "c"})
