"""Shared fixtures: one small world and one pipeline run per session.

Building a world and running the full pipeline takes a couple of seconds;
tests share session-scoped instances and must treat them as read-only.
Tests that mutate state build their own objects.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pipeline import PipelineRun, run_pipeline
from repro.world.scenario import ScenarioConfig, World, build_world


@pytest.fixture(scope="session")
def world() -> World:
    """A small but fully populated synthetic world (read-only)."""
    return build_world(ScenarioConfig(seed=7726, n_campaigns=60))


@pytest.fixture(scope="session")
def pipeline_run(world) -> PipelineRun:
    """One full collect→curate→enrich run over the shared world."""
    return run_pipeline(world)


@pytest.fixture(scope="session")
def enriched(pipeline_run):
    return pipeline_run.enriched


@pytest.fixture()
def rng() -> random.Random:
    """A fresh deterministic RNG per test."""
    return random.Random(1234)
