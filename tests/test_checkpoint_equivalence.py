"""Differential kill harness for checkpoint/resume's headline guarantee.

A checkpointed run killed hard at *any* journal write boundary — the
collection barrier, the curation barrier, any per-lookup record, even
the final ``complete`` record — must, after ``resume_pipeline``,
produce a :class:`~repro.core.pipeline.PipelineRun` byte-identical to a
run that never crashed: same rows, gaps, limitations, report, meter
charges, and final sim-clock position (``tests.fingerprints`` covers
all of it). And the resume must do so with **zero duplicate charged
service calls**: the crashed run's live request count plus the resumed
run's equals the uninterrupted run's exactly.

The harness crashes via the journal's own kill counter
(``kill_after_writes=N`` raises :class:`SimulatedCrash` — a
``BaseException``, so no handler in the pipeline can absorb it —
immediately after the Nth durable append), which places a kill point at
every boundary a real ``kill -9`` could land on. One tiny world is
killed at *every* write; a seeds × fault-profiles × worker-counts grid
is killed at sampled boundaries (first writes, mid-journal, the last
two writes) to keep wall time sane.
"""

import pytest

from repro.checkpoint import CheckpointSession, resume_pipeline
from repro.core.pipeline import run_pipeline
from repro.errors import SimulatedCrash
from repro.exec import ExecutionPolicy
from repro.faults import build_fault_plan
from repro.obs import Telemetry
from repro.world.scenario import ScenarioConfig, build_world

from tests.fingerprints import fingerprint_run

#: Dense config: small enough to kill at every single journal write.
_TINY = ScenarioConfig(seed=3, n_campaigns=2, include_sbi_burst=False)
#: Grid config: big enough to exercise retries/breakers under faults.
_GRID = ScenarioConfig(seed=0, n_campaigns=3, include_sbi_burst=False)

SEEDS = (3, 11)
PROFILES = ("flaky", "outage")
POLICIES = (ExecutionPolicy(workers=1), ExecutionPolicy(workers=4))

_SERVICES = ("hlr", "whois", "crtsh", "passivedns", "ipinfo",
             "virustotal", "gsb", "openai")


def _scenario(seed: int) -> ScenarioConfig:
    return ScenarioConfig(seed=seed, n_campaigns=_GRID.n_campaigns,
                          include_sbi_burst=_GRID.include_sbi_burst)


def _baseline(scenario, profile, policy):
    """Fingerprint of the uninterrupted, *uncheckpointed* run."""
    run = run_pipeline(build_world(scenario),
                       fault_plan=build_fault_plan(profile,
                                                   seed=scenario.seed),
                       execution=policy)
    return fingerprint_run(run)


def _journal_writes(scenario, profile, policy, directory):
    """Run checkpointed to completion; return (fingerprint, writes)."""
    session = CheckpointSession.record(directory)
    run = run_pipeline(build_world(scenario),
                       fault_plan=build_fault_plan(profile,
                                                   seed=scenario.seed),
                       execution=policy, checkpoint=session)
    return fingerprint_run(run), session.journal.writes


def _crash_then_resume(scenario, profile, policy, kill_at, directory):
    """Kill the run after journal write ``kill_at``; resume; fingerprint."""
    session = CheckpointSession.record(directory,
                                       kill_after_writes=kill_at)
    with pytest.raises(SimulatedCrash):
        run_pipeline(build_world(scenario),
                     fault_plan=build_fault_plan(profile,
                                                 seed=scenario.seed),
                     execution=policy, checkpoint=session)
    return fingerprint_run(resume_pipeline(directory))


def _sampled_kill_points(writes):
    """Stage barriers, early lookups, mid-journal, and the final writes."""
    points = {1, 2, 3, writes // 2, writes - 1, writes}
    return sorted(p for p in points if 1 <= p <= writes)


def test_record_mode_changes_nothing(tmp_path):
    """Journaling a run must not perturb it."""
    policy = ExecutionPolicy(workers=1)
    base = _baseline(_TINY, "flaky", policy)
    checkpointed, writes = _journal_writes(_TINY, "flaky", policy,
                                           tmp_path / "full")
    assert checkpointed == base
    assert writes > 3          # two barriers + lookups + complete


def test_kill_at_every_journal_write(tmp_path):
    """The dense proof: no write boundary exists where a crash loses
    or duplicates anything."""
    policy = ExecutionPolicy(workers=1)
    base = _baseline(_TINY, "flaky", policy)
    _, writes = _journal_writes(_TINY, "flaky", policy, tmp_path / "full")
    for kill_at in range(1, writes + 1):
        resumed = _crash_then_resume(_TINY, "flaky", policy, kill_at,
                                     tmp_path / f"kill{kill_at}")
        assert resumed == base, f"diverged after crash at write {kill_at}"


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", POLICIES,
                         ids=lambda p: f"workers{p.workers}")
def test_kill_grid_seeds_profiles_workers(seed, profile, policy, tmp_path):
    """Sampled kill points across the seeds × profiles × workers grid."""
    scenario = _scenario(seed)
    base = _baseline(scenario, profile, policy)
    _, writes = _journal_writes(scenario, profile, policy,
                                tmp_path / "full")
    for kill_at in _sampled_kill_points(writes):
        resumed = _crash_then_resume(scenario, profile, policy, kill_at,
                                     tmp_path / f"kill{kill_at}")
        assert resumed == base, (
            f"diverged: seed={seed} profile={profile} "
            f"workers={policy.workers} crash at write {kill_at}")


def _live_requests(telemetry):
    """Per-service charged-call counts this process actually performed."""
    return {service: telemetry.metrics.value("service.requests",
                                             service=service)
            for service in _SERVICES}


def test_resume_performs_zero_duplicate_charged_calls(tmp_path):
    """crashed + resumed live request counts == uninterrupted's, per
    service — the journal replays completed lookups, it never re-buys
    them. (Meter-state equality is already inside the fingerprint; this
    checks the *process-local* work, which state restoration could
    otherwise hide.)"""
    profile, kill_at = "flaky", 15
    plan = build_fault_plan(profile, seed=_TINY.seed)

    uninterrupted = Telemetry.create()
    run_pipeline(build_world(_TINY), telemetry=uninterrupted,
                 fault_plan=plan)

    crashed = Telemetry.create()
    session = CheckpointSession.record(tmp_path / "ck",
                                       kill_after_writes=kill_at)
    with pytest.raises(SimulatedCrash):
        run_pipeline(build_world(_TINY), telemetry=crashed,
                     fault_plan=plan, checkpoint=session)

    resumed = Telemetry.create()
    resume_pipeline(tmp_path / "ck", telemetry=resumed)

    full = _live_requests(uninterrupted)
    crash_part = _live_requests(crashed)
    resume_part = _live_requests(resumed)
    combined = {s: crash_part[s] + resume_part[s] for s in _SERVICES}
    assert combined == full
    # The crash landed mid-enrichment, so both halves did real work.
    assert sum(crash_part.values()) > 0
    assert sum(resume_part.values()) > 0


def test_resumed_telemetry_reports_replays(tmp_path):
    session = CheckpointSession.record(tmp_path / "ck",
                                       kill_after_writes=10)
    with pytest.raises(SimulatedCrash):
        run_pipeline(build_world(_TINY),
                     fault_plan=build_fault_plan("flaky", seed=_TINY.seed),
                     checkpoint=session)
    telemetry = Telemetry.create()
    resume_pipeline(tmp_path / "ck", telemetry=telemetry)
    snapshot = telemetry.checkpoint_snapshot
    assert snapshot["mode"] == "resume"
    assert snapshot["stages_restored"] == ["collection", "curation"]
    assert snapshot["lookups_replayed"] > 0
