"""Tests for the table rendering helpers."""

import pytest

from repro.utils.tables import Table, format_count_pct, ranked_table


class TestFormatCountPct:
    def test_basic(self):
        assert format_count_pct(1166, 8765) == "1,166 (13.3%)"

    def test_zero_total(self):
        assert format_count_pct(5, 0) == "5"

    def test_digits(self):
        assert format_count_pct(1, 3, digits=2) == "1 (33.33%)"


class TestTable:
    def make(self):
        table = Table(title="T", columns=["a", "b"])
        table.add_row("x", 1)
        table.add_row("y", None)
        return table

    def test_add_row_validates_length(self):
        table = Table(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_len(self):
        assert len(self.make()) == 2

    def test_column_extraction(self):
        assert self.make().column("a") == ["x", "y"]

    def test_to_text_contains_values(self):
        text = self.make().to_text()
        assert "T" in text
        assert "x" in text
        assert "-" in text  # None renders as dash

    def test_to_csv_round(self):
        csv_text = self.make().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "x,1"

    def test_to_records(self):
        records = self.make().to_records()
        assert records[0] == {"a": "x", "b": 1}

    def test_notes_rendered(self):
        table = self.make()
        table.add_note("hello note")
        assert "hello note" in table.to_text()

    def test_float_formatting(self):
        table = Table(title="F", columns=["v"])
        table.add_row(3.14159)
        assert "3.14" in table.to_text()


class TestRankedTable:
    def test_sorted_descending(self):
        table = ranked_table("R", "name", "count",
                             [("a", 1), ("b", 5), ("c", 3)], top=2)
        assert table.rows[0][0] == "b"
        assert table.rows[1][0] == "c"
        assert len(table) == 2

    def test_tie_broken_by_label(self):
        table = ranked_table("R", "n", "c", [("z", 2), ("a", 2)])
        assert table.rows[0][0] == "a"

    def test_percentages(self):
        table = ranked_table("R", "n", "c", [("a", 50)], total_for_pct=100)
        assert "50.0%" in str(table.rows[0][1])
