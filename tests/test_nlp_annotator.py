"""Tests for the end-to-end annotator and the OpenAI endpoint facade."""

import json

import pytest

from repro.errors import ValidationError
from repro.imaging.renderer import ScreenshotRenderer
from repro.imaging.vision_openai import OpenAiVisionExtractor, VISION_PROMPT
from repro.nlp.annotator import (
    Annotation,
    MessageAnnotator,
    SCAM_TYPE_JSON_NAMES,
    lure_from_json,
    scam_type_from_json,
)
from repro.nlp.openai_api import ANNOTATION_PROMPT, OpenAiEndpoint
from repro.types import LurePrinciple, ScamType
from repro.utils.rng import derive


@pytest.fixture(scope="module")
def annotator():
    return MessageAnnotator()


class TestAnnotator:
    def test_full_annotation(self, annotator):
        annotation = annotator.annotate(
            "m1",
            "Netflix: your subscription payment was declined. Update "
            "billing within 48h to keep watching: https://nf-billing.com/x",
        )
        assert annotation.labels.brand == "Netflix"
        assert annotation.labels.scam_type is ScamType.OTHERS
        assert annotation.labels.language == "en"
        assert LurePrinciple.TIME_URGENCY in annotation.labels.lures
        assert annotation.translation is None

    def test_non_english_gets_translation(self, annotator):
        annotation = annotator.annotate(
            "m2",
            "BBVA: su cuenta ha sido bloqueada por actividad sospechosa. "
            "Por favor verifique sus datos en https://b.com/v para evitar "
            "la suspension.",
        )
        assert annotation.labels.language == "es"
        assert annotation.translation is not None
        assert "blocked" in annotation.translation
        assert annotation.labels.scam_type is ScamType.BANKING

    def test_batch(self, annotator):
        annotations = annotator.annotate_batch([
            {"id": "a", "message": "Hi mum, my phone broke, new number"},
            {"id": "b", "message": "Your HMRC tax refund awaits: gov-hm.com/x"},
        ])
        assert [a.message_id for a in annotations] == ["a", "b"]

    def test_json_round_trip(self, annotator):
        annotation = annotator.annotate(
            "m3", "DHL: your parcel is held, pay the customs fee today: "
                  "https://dhl-fee.com/x"
        )
        parsed = Annotation.from_json(annotation.to_json())
        assert parsed.labels.scam_type == annotation.labels.scam_type
        assert parsed.labels.brand == annotation.labels.brand
        assert parsed.labels.lures == annotation.labels.lures

    def test_json_names_cover_prompt(self):
        assert set(SCAM_TYPE_JSON_NAMES.values()) == {
            "Hey mum/dad", "Delivery/Parcel", "Banking", "Government",
            "Telecom", "Wrong number", "Spam", "Others",
        }

    def test_scam_type_from_json_unknown_is_others(self):
        assert scam_type_from_json("Banana") is ScamType.OTHERS

    def test_lure_from_json(self):
        assert lure_from_json("Authority Principle") is LurePrinciple.AUTHORITY
        assert lure_from_json("Nonsense") is None


class TestOpenAiEndpoint:
    @pytest.fixture()
    def endpoint(self):
        return OpenAiEndpoint(rate_per_second=10_000)

    def test_annotate_message_returns_json(self, endpoint):
        response = endpoint.annotate_message(
            ANNOTATION_PROMPT,
            {"id": "m1", "message": "SBI: your account is locked, verify: "
                                    "https://sbi-x.com/kyc"},
        )
        data = json.loads(response.content)
        assert data["id"] == "m1"
        assert data["scam_type"] == "Banking"
        assert response.completion_tokens > 0

    def test_prompt_contract_enforced(self, endpoint):
        with pytest.raises(ValidationError):
            endpoint.annotate_message("do whatever", {"id": "x", "message": "y"})

    def test_payload_contract_enforced(self, endpoint):
        with pytest.raises(ValidationError):
            endpoint.annotate_message(ANNOTATION_PROMPT, {"id": "x"})

    def test_vision_requires_extractor(self, endpoint):
        renderer = ScreenshotRenderer(derive(12, "vr"))
        with pytest.raises(ValidationError):
            endpoint.extract_image(VISION_PROMPT,
                                   renderer.render_awareness_poster())

    def test_vision_call_round_trip(self):
        vision = OpenAiVisionExtractor(derive(13, "ve"), miss_rate=0.0)
        endpoint = OpenAiEndpoint(vision=vision, rate_per_second=10_000)
        renderer = ScreenshotRenderer(derive(13, "vr2"))
        poster = renderer.render_awareness_poster()
        response = endpoint.extract_image(VISION_PROMPT, poster)
        data = json.loads(response.content)
        assert data == {"timestamp": "", "text": "", "url": "",
                        "sender-id": ""}

    def test_requests_counted(self, endpoint):
        endpoint.annotate_message(
            ANNOTATION_PROMPT, {"id": "1", "message": "hello"}
        )
        assert endpoint.requests == 1
