"""Tests for the mitigation simulators and delivery-path economics."""

import random

import pytest

from repro.core.mitigation import (
    CaScreening,
    MitigationOutcome,
    RegistrarAbuseCheck,
    ReportingChannelModel,
    ShortenerScreening,
    run_all_mitigations,
)
from repro.errors import ValidationError
from repro.sms.delivery import (
    DeliveryEngine,
    PATHS,
    path_for,
)
from repro.types import SenderIdKind


class TestReportingChannel:
    def test_low_awareness_low_coverage(self):
        model = ReportingChannelModel(awareness=0.24)
        outcome = model.simulate(10_000, random.Random(1))
        assert outcome.coverage < 0.15  # 24% awareness x 35% propensity

    def test_full_awareness_bounded_by_propensity(self):
        model = ReportingChannelModel(awareness=1.0, report_propensity=0.35)
        outcome = model.simulate(10_000, random.Random(1))
        assert 0.30 < outcome.coverage < 0.40

    def test_awareness_sweep_monotone(self):
        model = ReportingChannelModel()
        outcomes = model.awareness_sweep(5_000, (0.1, 0.5, 0.9))
        coverages = [o.coverage for o in outcomes]
        assert coverages == sorted(coverages)

    def test_invalid_awareness_rejected(self):
        with pytest.raises(ValueError):
            ReportingChannelModel(awareness=1.5)


class TestInfrastructureMitigations:
    def test_shortener_screening_intercepts_some(self, enriched):
        outcome = ShortenerScreening(min_vendors=1).simulate(enriched)
        assert outcome.eligible > 0
        assert 0 < outcome.intercepted <= outcome.eligible

    def test_stricter_screening_intercepts_fewer(self, enriched):
        lax = ShortenerScreening(min_vendors=1).simulate(enriched)
        strict = ShortenerScreening(min_vendors=5).simulate(enriched)
        assert strict.intercepted <= lax.intercepted

    def test_registrar_check_catches_squatting(self, enriched):
        outcome = RegistrarAbuseCheck().simulate(enriched)
        assert outcome.eligible > 0
        # Most synthetic scam domains embed a brand slug.
        assert outcome.coverage > 0.3

    def test_registrar_check_spares_neutral_names(self):
        check = RegistrarAbuseCheck()
        assert check.domain_is_squatting("secure-netflix-login.com")
        assert not check.domain_is_squatting("blue-mountain-hiking.org")

    def test_ca_screening_bounded(self, enriched):
        outcome = CaScreening().simulate(enriched)
        assert outcome.intercepted <= outcome.eligible

    def test_run_all(self, enriched):
        outcomes = run_all_mitigations(enriched)
        assert len(outcomes) == 5
        assert all(isinstance(o, MitigationOutcome) for o in outcomes)
        assert all(0.0 <= o.coverage <= 1.0 for o in outcomes)


class TestDeliveryPaths:
    def test_catalogue(self):
        assert set(PATHS) == {"mno", "aggregator", "imessage", "sim_farm",
                              "blaster"}
        assert path_for("aggregator").can_spoof
        assert not path_for("mno").can_spoof

    def test_unknown_path_raises(self):
        with pytest.raises(ValidationError):
            path_for("carrier-pigeon")

    def test_aggregator_cheapest_bulk_route(self):
        assert PATHS["aggregator"].unit_cost < PATHS["mno"].unit_cost
        assert PATHS["aggregator"].unit_cost < PATHS["sim_farm"].unit_cost


class TestDeliveryEngine:
    def test_delivery_produces_receipts(self, world):
        engine = DeliveryEngine(random.Random(3))
        events = world.events[:200]
        stats = engine.deliver(events)
        assert stats.delivered + stats.blocked_messages == len(events)
        assert stats.total_cost > 0
        assert stats.total_segments >= stats.delivered

    def test_receipts_record_path(self, world):
        engine = DeliveryEngine(random.Random(3))
        stats = engine.deliver(world.events[:100])
        paths = {r.path for r in stats.receipts}
        assert paths <= set(PATHS)

    def test_burned_identity_gets_filtered(self, world):
        # Push one identity far past its burn threshold.
        event = next(e for e in world.events
                     if e.delivery_path == "mno"
                     and e.sender.kind is SenderIdKind.PHONE_NUMBER)
        engine = DeliveryEngine(random.Random(3))
        stats = engine.deliver([event] * 400)
        assert stats.burned_identities == 1
        assert stats.blocked_messages > 100

    def test_cost_report_by_path(self, world):
        engine = DeliveryEngine()
        report = engine.campaign_cost_report(world.events[:300])
        assert report
        for path, stats in report.items():
            assert path in PATHS
            if stats.delivered:
                assert stats.cost_per_delivered() > 0

    def test_wrong_kind_rejected(self, world):
        # An email identity forced down the MNO path is blocked.
        import dataclasses
        email_event = next(e for e in world.events
                           if e.sender.kind is SenderIdKind.EMAIL)
        bad = dataclasses.replace(email_event, delivery_path="mno")
        stats = DeliveryEngine().deliver([bad])
        assert stats.blocked_messages == 1
        assert stats.delivered == 0
