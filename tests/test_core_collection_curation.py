"""Tests for collection and curation over the shared world."""

import pytest

from repro.core.collection import collect_all
from repro.core.config import PipelineConfig
from repro.core.curation import Curator
from repro.imaging.vision_openai import OpenAiVisionExtractor
from repro.types import Forum
from repro.utils.rng import derive


class TestCollection:
    def test_all_forums_contribute(self, pipeline_run):
        by_forum = pipeline_run.collection.by_forum()
        for forum in Forum:
            assert by_forum.get(forum), forum

    def test_no_duplicate_posts(self, pipeline_run):
        ids = [(r.forum, r.post_id) for r in pipeline_run.collection.reports]
        assert len(ids) == len(set(ids))

    def test_keyword_recorded_for_search_forums(self, pipeline_run):
        twitter = pipeline_run.collection.by_forum()[Forum.TWITTER]
        searched = [r for r in twitter if not r.via_reply]
        assert all(r.matched_keyword for r in searched)

    def test_reply_originals_fetched(self, pipeline_run):
        twitter = pipeline_run.collection.by_forum()[Forum.TWITTER]
        assert any(r.via_reply for r in twitter)

    def test_collection_respects_windows(self, pipeline_run):
        windows = pipeline_run.config.windows
        for report in pipeline_run.collection.by_forum()[Forum.TWITTER]:
            assert report.posted_at < windows.twitter_end or report.via_reply

    def test_deleted_historical_tweets_missed(self, world, pipeline_run):
        # Deleted posts before the realtime window are invisible (§7.1).
        collected_ids = {
            r.post_id for r in pipeline_run.collection.reports
            if r.forum is Forum.TWITTER
        }
        windows = pipeline_run.config.windows
        deleted_historical = [
            p for p in world.twitter.all_posts()
            if p.deleted and p.created_at < windows.twitter_realtime_start
            and any(k in p.body.lower() for k in pipeline_run.config.keywords)
        ]
        if not deleted_historical:
            pytest.skip("no deleted historical posts in this draw")
        for post in deleted_historical:
            assert post.post_id not in collected_ids

    def test_collect_all_is_repeatable(self, world):
        first = collect_all(world.forums, PipelineConfig())
        second = collect_all(world.forums, PipelineConfig())
        assert len(first.reports) == len(second.reports)


class TestCuration:
    def test_stats_accounting(self, pipeline_run):
        stats = pipeline_run.curation_stats
        assert stats.reports_in == len(pipeline_run.collection.reports)
        assert stats.records_out == len(pipeline_run.dataset)
        assert stats.images_processed >= stats.images_dismissed

    def test_decoy_images_dismissed(self, pipeline_run):
        assert pipeline_run.curation_stats.images_dismissed > 0

    def test_records_have_text(self, pipeline_run):
        for record in pipeline_run.dataset:
            assert record.text.strip()

    def test_most_records_from_images(self, pipeline_run):
        from_image = sum(1 for r in pipeline_run.dataset if r.from_image)
        assert from_image > len(pipeline_run.dataset) * 0.6

    def test_pastebin_records_parsed(self, pipeline_run):
        records = pipeline_run.dataset.by_forum(Forum.PASTEBIN)
        assert records
        for record in records:
            assert record.sender is not None or record.text

    def test_smishing_eu_records_have_no_images(self, pipeline_run):
        for record in pipeline_run.dataset.by_forum(Forum.SMISHING_EU):
            assert not record.from_image

    def test_extracted_text_matches_ground_truth(self, world, pipeline_run):
        checked = 0
        for record in pipeline_run.dataset:
            if not record.from_image or record.truth_event_id is None:
                continue
            event = world.event(record.truth_event_id)
            if event is None:
                continue
            # The vision extractor reconstructs the text verbatim unless
            # the reporter redacted the URL.
            if str(event.url) in record.text or event.url is None:
                assert event.message.text.split()[:3] == \
                    record.text.split()[:3]
                checked += 1
        assert checked > 50

    def test_sender_extraction_accuracy(self, world, pipeline_run):
        good = bad = 0
        for record in pipeline_run.dataset:
            if record.sender is None or record.truth_event_id is None:
                continue
            event = world.event(record.truth_event_id)
            if event is None:
                continue
            if record.sender.normalized == event.sender.normalized:
                good += 1
            else:
                bad += 1
        assert good > bad * 20  # near-perfect sender recovery

    def test_timestamps_mostly_recovered(self, world, pipeline_run):
        with_ts = sum(1 for r in pipeline_run.dataset
                      if r.from_image and r.timestamp is not None)
        total_images = sum(1 for r in pipeline_run.dataset if r.from_image)
        assert with_ts > total_images * 0.9

    def test_dateless_timestamps_flagged(self, pipeline_run):
        dateless = [
            r for r in pipeline_run.dataset
            if r.timestamp is not None and not r.timestamp.has_date
        ]
        # The time_only rendering style (~14%) produces these (§3.3.2).
        assert dateless

    def test_curator_fresh_run_matches(self, world, pipeline_run):
        vision = OpenAiVisionExtractor(
            derive(world.config.seed, "pipeline-vision"), miss_rate=0.015
        )
        curator = Curator(vision)
        dataset = curator.curate(pipeline_run.collection.reports)
        assert len(dataset) == len(pipeline_run.dataset)
