"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.seed == 7726
        assert args.campaigns == 120

    def test_global_flags(self):
        args = build_parser().parse_args(
            ["--seed", "5", "--campaigns", "9", "report"]
        )
        assert args.seed == 5
        assert args.campaigns == 9


class TestCommands:
    ARGS = ["--campaigns", "25", "--seed", "3"]

    def test_report(self, capsys):
        assert main(self.ARGS + ["report"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 2" in out

    def test_release(self, tmp_path, capsys):
        output = tmp_path / "rel.jsonl"
        assert main(self.ARGS + ["release", str(output)]) == 0
        assert output.exists()
        assert "pseudo-anonymised" in capsys.readouterr().out

    def test_casestudy(self, capsys):
        assert main(self.ARGS + ["casestudy", "--sample", "50"]) == 0
        assert "Malware Family" in capsys.readouterr().out

    def test_mine(self, capsys):
        assert main(self.ARGS + ["mine", "--top", "5"]) == 0
        assert "Mined campaigns" in capsys.readouterr().out

    def test_figures(self, tmp_path, capsys):
        out_dir = tmp_path / "figs"
        assert main(self.ARGS + ["figures", str(out_dir)]) == 0
        assert (out_dir / "figure2.csv").exists()
        assert (out_dir / "figure3.csv").exists()

    def test_stats(self, capsys):
        assert main(self.ARGS + ["stats", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Pipeline stages" in out
        assert "Service telemetry" in out
        assert "collect/Twitter" in out
        assert "enrich/openai" in out

    def test_stats_flags_after_subcommand(self, capsys):
        # The acceptance shape: run-shaping flags given after `stats`.
        assert main(["stats", "--seed", "3", "--campaigns", "25",
                     "--quiet"]) == 0
        assert "seed=3 campaigns=25" in capsys.readouterr().out

    def test_trace_out_writes_json(self, tmp_path, capsys):
        import json
        trace_path = tmp_path / "trace.json"
        assert main(self.ARGS + ["stats", "--quiet",
                                 "--trace-out", str(trace_path)]) == 0
        trace = json.loads(trace_path.read_text())
        names = {span["name"] for span in trace["spans"]}
        assert {"pipeline", "collect", "curate", "enrich"} <= names

    def test_progress_lines_on_stderr(self, capsys):
        assert main(self.ARGS + ["report"]) == 0
        err = capsys.readouterr().err
        assert "✓ pipeline" in err
        assert "✓ collect/Twitter" in err
