"""Differential chaos-under-load proofs for the intake service.

The serve layer's headline guarantee: a server killed mid-schedule and
resumed from its last durable commit converges on *byte-identical*
observable state to a server that was never interrupted — same dataset
rows, annotations, gap/rejection ledgers, request statuses, dedup
lineage, mode-transition history, latency digests, final clock, and
(exactly-once billing) the same per-service charged-call totals. The
matrix here crosses fault profiles × kill points × worker counts and
asserts `serve_fingerprint` equality for every cell, plus the shed
accounting invariants that make "no report lost, none double-processed"
checkable from the outside.
"""

import json

import pytest

from repro.faults import build_fault_plan
from repro.serve import (
    FRONT_DOOR_REASONS,
    LoadSpec,
    ServeConfig,
    charged_calls,
    run_killed_then_resumed,
    run_to_completion,
    serve_fingerprint,
)
from repro.world.scenario import ScenarioConfig

SCENARIO = ScenarioConfig(seed=7726, n_campaigns=12)
LOAD = LoadSpec(profile="burst", requests=400, reporters=80, seed=11)
CONFIG = ServeConfig(queue_capacity=64, batch_size=8, drain_interval=20.0,
                     commit_every=50)


def _kwargs(faults, *, workers=1, load=LOAD):
    from repro.exec import ExecutionPolicy

    return dict(
        scenario=SCENARIO,
        load=load,
        config=CONFIG,
        fault_plan=build_fault_plan(faults, seed=3),
        execution=ExecutionPolicy(workers=workers),
    )


@pytest.fixture(scope="module")
def baselines():
    """One uninterrupted reference run per fault profile."""
    return {faults: run_to_completion(**_kwargs(faults))
            for faults in ("flaky", "outage")}


class TestKillResumeEquivalence:
    @pytest.mark.parametrize("faults", ["flaky", "outage"])
    @pytest.mark.parametrize("kill_at", [60, 211])
    def test_fingerprint_stable_across_kill(self, tmp_path, baselines,
                                            faults, kill_at):
        resumed = run_killed_then_resumed(
            tmp_path / f"serve-{faults}-{kill_at}", kill_at=kill_at,
            **_kwargs(faults))
        assert serve_fingerprint(resumed) == serve_fingerprint(
            baselines[faults])

    @pytest.mark.parametrize("faults", ["flaky", "outage"])
    def test_zero_duplicate_charges(self, tmp_path, baselines, faults):
        resumed = run_killed_then_resumed(
            tmp_path / f"serve-{faults}", kill_at=130, **_kwargs(faults))
        assert charged_calls(resumed) == charged_calls(baselines[faults])

    def test_double_kill_still_converges(self, tmp_path, baselines):
        from repro.errors import SimulatedCrash
        from repro.serve import IntakeService

        serve_dir = tmp_path / "serve-twice"
        first = IntakeService.create(serve_dir=serve_dir, kill_at=90,
                                     **_kwargs("flaky"))
        with pytest.raises(SimulatedCrash):
            first.run()
        second = IntakeService.load(serve_dir, kill_at=260)
        with pytest.raises(SimulatedCrash):
            second.run()
        third = IntakeService.load(serve_dir)
        third.run()
        assert serve_fingerprint(third) == serve_fingerprint(
            baselines["flaky"])


class TestWorkerEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_never_changes_results(self, baselines, workers):
        parallel = run_to_completion(**_kwargs("flaky", workers=workers))
        assert serve_fingerprint(parallel) == serve_fingerprint(
            baselines["flaky"])

    def test_workers_and_kill_compose(self, tmp_path, baselines):
        resumed = run_killed_then_resumed(
            tmp_path / "serve-w2", kill_at=211,
            **_kwargs("flaky", workers=2))
        assert serve_fingerprint(resumed) == serve_fingerprint(
            baselines["flaky"])


class TestShedAccounting:
    @pytest.mark.parametrize("faults", ["flaky", "outage"])
    def test_every_report_accounted(self, baselines, faults):
        service = baselines[faults]
        stats = service.stats()
        assert stats["accepted"] + stats["shed"] == stats["submitted"]
        assert (stats["processed"] + stats["timed_out"]
                == stats["accepted"])
        front_door = [r for r in service.state.rejections
                      if r.reason in FRONT_DOOR_REASONS]
        assert len(front_door) == stats["shed"]
        # Every rejection names its request, reporter, and service mode.
        for rejection in service.state.rejections:
            assert rejection.request_id and rejection.reporter
            assert rejection.mode in ("healthy", "degraded", "shedding",
                                      "draining")

    def test_statuses_partition_the_submissions(self, baselines):
        service = baselines["flaky"]
        stats = service.stats()
        statuses = list(service.state.statuses.values())
        assert len(statuses) == stats["submitted"]
        assert statuses.count("done") == stats["processed"]
        assert statuses.count("timed_out") == stats["timed_out"]
        assert statuses.count("rejected") == stats["shed"]

    def test_tight_deadlines_survive_kill_resume(self, tmp_path):
        load = LoadSpec(profile="burst", requests=400, reporters=80,
                        seed=11, budget_range=(1.0, 40.0))
        base = run_to_completion(**_kwargs("flaky", load=load))
        assert base.stats()["timed_out"] > 0
        resumed = run_killed_then_resumed(
            tmp_path / "serve-deadline", kill_at=211,
            **_kwargs("flaky", load=load))
        assert serve_fingerprint(resumed) == serve_fingerprint(base)


class TestFingerprintSensitivity:
    """The fingerprint must actually see behaviour, not vacuously agree."""

    def test_fault_profiles_fingerprint_differently(self, baselines):
        assert (serve_fingerprint(baselines["flaky"])
                != serve_fingerprint(baselines["outage"]))

    def test_fingerprint_is_valid_canonical_json(self, baselines):
        payload = json.loads(serve_fingerprint(baselines["flaky"]))
        assert set(payload) >= {"rows", "annotations", "gaps", "rejections",
                                "statuses", "charged", "transitions",
                                "counters", "clock_now"}
