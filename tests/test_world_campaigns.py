"""Tests for campaign drawing and event generation."""

import datetime as dt

import pytest

from repro.net.asn import AsRegistry
from repro.types import ScamType, SenderIdKind, URL_BEARING_SCAM_TYPES
from repro.utils.rng import derive
from repro.world.campaigns import CampaignFactory
from repro.world.infrastructure import InfrastructureBuilder
from repro.world.numbering import NumberFactory


@pytest.fixture()
def factory():
    infra = InfrastructureBuilder(
        derive(11, "ci"), as_registry=AsRegistry()
    )
    numbers = NumberFactory(derive(11, "cn"))
    return CampaignFactory(
        derive(11, "cf"), infrastructure=infra, number_factory=numbers
    )


class TestCampaignCreation:
    def test_forced_scam_type(self, factory):
        campaign = factory.create_campaign(scam_type=ScamType.DELIVERY)
        assert campaign.scam_type is ScamType.DELIVERY

    def test_url_scams_have_links(self, factory):
        for scam in URL_BEARING_SCAM_TYPES:
            campaign = factory.create_campaign(scam_type=scam, volume=20)
            assert campaign.links, scam

    def test_conversation_scams_have_no_links(self, factory):
        campaign = factory.create_campaign(
            scam_type=ScamType.WRONG_NUMBER, volume=10
        )
        assert not campaign.links

    def test_conversation_sender_is_phone(self, factory):
        campaign = factory.create_campaign(
            scam_type=ScamType.HEY_MUM_DAD, volume=10
        )
        for identity in campaign.identities:
            assert identity.sender.kind is SenderIdKind.PHONE_NUMBER

    def test_timeline_respected(self, factory):
        campaign = factory.create_campaign(volume=10)
        assert dt.date(2017, 1, 1) <= campaign.start
        assert campaign.end <= dt.date(2023, 9, 30)
        assert campaign.start < campaign.end

    def test_identity_pool_bounded(self, factory):
        campaign = factory.create_campaign(volume=100)
        assert 1 <= len(campaign.identities) <= 12

    def test_campaign_ids_unique(self, factory):
        ids = {factory.create_campaign(volume=5).campaign_id
               for _ in range(40)}
        assert len(ids) == 40


class TestEventGeneration:
    def test_volume_respected(self, factory, rng):
        campaign = factory.create_campaign(scam_type=ScamType.BANKING,
                                           volume=25)
        events = campaign.generate_events(rng)
        assert len(events) == 25

    def test_event_fields_consistent(self, factory, rng):
        campaign = factory.create_campaign(scam_type=ScamType.BANKING,
                                           volume=30)
        for event in campaign.generate_events(rng):
            assert event.campaign_id == campaign.campaign_id
            assert event.scam_type is campaign.scam_type
            assert event.language == campaign.language
            assert event.lures
            assert event.message.text

    def test_url_events_embed_link(self, factory, rng):
        campaign = factory.create_campaign(scam_type=ScamType.BANKING,
                                           volume=30)
        events = campaign.generate_events(rng)
        with_url = [e for e in events if e.url is not None]
        assert with_url
        for event in with_url:
            assert str(event.url) in event.message.text

    def test_non_english_events_carry_translation(self, factory, rng):
        for _ in range(30):
            campaign = factory.create_campaign(scam_type=ScamType.BANKING,
                                               volume=5)
            if campaign.language != "en":
                events = campaign.generate_events(rng)
                assert any(e.translated_text for e in events)
                return
        pytest.skip("no non-English campaign drawn")

    def test_event_ids_unique(self, factory, rng):
        campaign = factory.create_campaign(volume=50)
        ids = {e.event_id for e in campaign.generate_events(rng)}
        assert len(ids) == 50

    def test_send_times_within_campaign_window(self, factory, rng):
        campaign = factory.create_campaign(volume=40)
        for event in campaign.generate_events(rng):
            assert campaign.start <= event.received_at.date() <= campaign.end


class TestSbiBurst:
    def test_burst_moment_fixed(self, factory, rng):
        campaign = factory.create_sbi_burst_campaign(volume=50)
        events = campaign.generate_events(rng)
        assert len(events) == 50
        for event in events:
            assert event.received_at.date() == dt.date(2021, 8, 3)
            assert event.received_at.hour == 11
            assert event.received_at.minute == 34

    def test_burst_is_sbi_banking_india(self, factory, rng):
        campaign = factory.create_sbi_burst_campaign(volume=10)
        assert campaign.scam_type is ScamType.BANKING
        assert campaign.brand.name == "State Bank of India"
        assert campaign.origin_country == "IND"
        assert campaign.language == "en"


class TestDeliveryPaths:
    def test_paths_are_known(self, factory):
        known = {"mno", "aggregator", "imessage", "sim_farm", "blaster"}
        for _ in range(20):
            campaign = factory.create_campaign(volume=10)
            for identity in campaign.identities:
                assert identity.delivery_path in known

    def test_alphanumeric_uses_aggregator(self, factory):
        for _ in range(40):
            campaign = factory.create_campaign(scam_type=ScamType.BANKING,
                                               volume=10)
            for identity in campaign.identities:
                if identity.sender.kind is SenderIdKind.ALPHANUMERIC:
                    assert identity.delivery_path == "aggregator"
                elif identity.sender.kind is SenderIdKind.EMAIL:
                    assert identity.delivery_path == "imessage"
