"""Tests for the TLD registry."""

import pytest

from repro.errors import ValidationError
from repro.net.tld import TldRegistry, default_registry
from repro.types import TldClass


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestClassification:
    def test_com_is_generic(self, registry):
        assert registry.classify("com") is TldClass.GENERIC

    def test_in_is_cc(self, registry):
        assert registry.classify("in") is TldClass.COUNTRY_CODE

    def test_biz_is_generic_restricted(self, registry):
        assert registry.classify("biz") is TldClass.GENERIC_RESTRICTED

    def test_gov_is_sponsored(self, registry):
        assert registry.classify("gov") is TldClass.SPONSORED

    def test_arpa_is_infrastructure(self, registry):
        assert registry.classify("arpa") is TldClass.INFRASTRUCTURE

    def test_case_and_dot_insensitive(self, registry):
        assert registry.classify(".COM") is TldClass.GENERIC

    def test_unknown_raises(self, registry):
        with pytest.raises(ValidationError):
            registry.classify("notarealtld")

    def test_contains(self, registry):
        assert "com" in registry
        assert "zzz" not in registry

    def test_all_suffixes_filter(self, registry):
        generics = set(registry.all_suffixes(TldClass.GENERIC))
        assert "com" in generics
        assert "in" not in generics

    def test_registry_is_large(self, registry):
        # The paper observes >280 abused TLDs; our registry must offer a
        # comparable namespace.
        assert len(registry) > 200


class TestSplitHost:
    def test_simple_host(self, registry):
        assert registry.split_host("example.com") == ("example.com", "com")

    def test_subdomain(self, registry):
        domain, tld = registry.split_host("fb.user-page.online")
        assert domain == "user-page.online"
        assert tld == "online"

    def test_public_suffix_web_app(self, registry):
        domain, tld = registry.split_host("sa-krs.web.app")
        assert domain == "sa-krs.web.app"
        assert tld == "web.app"

    def test_public_suffix_ngrok(self, registry):
        domain, tld = registry.split_host("abc123.ngrok.io")
        assert tld == "ngrok.io"
        assert domain == "abc123.ngrok.io"

    def test_co_uk(self, registry):
        domain, tld = registry.split_host("bank.example.co.uk")
        assert domain == "example.co.uk"
        assert tld == "co.uk"

    def test_effective_tld(self, registry):
        assert registry.effective_tld("x.y.web.app") == "web.app"

    def test_no_dot_raises(self, registry):
        with pytest.raises(ValidationError):
            registry.split_host("localhost")

    def test_unknown_tld_raises(self, registry):
        with pytest.raises(ValidationError):
            registry.split_host("example.invalidtld")

    def test_default_registry_is_cached(self):
        assert default_registry() is default_registry()
