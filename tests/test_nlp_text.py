"""Tests for tokenization, normalization, and language identification."""

import pytest

from repro.nlp.langdetect import LanguageDetector
from repro.nlp.normalize import (
    normalize_text,
    normalize_token,
    squash,
    strip_accents,
)
from repro.nlp.tokenize import dominant_script, tokenize, words_only


class TestTokenize:
    def test_basic_words_lowercased(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_url_kept_whole(self):
        tokens = tokenize("visit https://evil.com/path?x=1 now")
        assert "https://evil.com/path?x=1" in tokens

    def test_schemeless_url_kept_whole(self):
        tokens = tokenize("go to bit.ly/abc now")
        assert "bit.ly/abc" in tokens

    def test_devanagari_words_not_shattered(self):
        # Regression: \w misses combining matras, splitting खाता apart.
        tokens = tokenize("आपका खाता निलंबित")
        assert "खाता" in tokens
        assert "आपका" in tokens

    def test_words_only_drops_urls_and_numbers(self):
        words = words_only("call 555123 or visit evil.com/x today")
        assert "today" in words
        assert "555123" not in words
        assert not any("evil" in w for w in words)


class TestDominantScript:
    @pytest.mark.parametrize("text,script", [
        ("hello there", "latin"),
        ("こんにちは", "kana"),
        ("您的账户", "han"),
        ("आपका खाता", "devanagari"),
        ("ваш счет", "cyrillic"),
        ("حسابك", "arabic"),
        ("บัญชี", "thai"),
        ("계좌", "hangul"),
    ])
    def test_scripts(self, text, script):
        assert dominant_script(text) == script

    def test_empty_unknown(self):
        assert dominant_script("12345 !!!") == "unknown"


class TestNormalize:
    def test_leet_brand(self):
        assert normalize_token("N3tfl!x") == "netflix"

    def test_amaz0n(self):
        assert normalize_token("Amaz0n") == "amazon"

    def test_pure_numbers_untouched(self):
        assert normalize_token("123456") == "123456"

    def test_homoglyphs(self):
        # Cyrillic а/е/о inside a Latin word.
        assert normalize_token("pаypаl") == "paypal"

    def test_normalize_text_preserves_shape(self):
        assert normalize_text("Your 0TP is 123456") == "your otp is 123456"

    def test_strip_accents(self):
        assert strip_accents("café") == "cafe"

    def test_squash(self):
        assert squash("N3tfl!x") == "netflix"
        assert squash("State Bank of India") == "statebankofindia"


class TestLanguageDetector:
    @pytest.fixture(scope="class")
    def detector(self):
        return LanguageDetector()

    @pytest.mark.parametrize("text,expected", [
        ("Your account has been locked, please click the link", "en"),
        ("Su cuenta ha sido bloqueada, por favor haga clic", "es"),
        ("Uw rekening is geblokkeerd, klik om te verifieren", "nl"),
        ("Votre compte a été suspendu, veuillez cliquez pour vous", "fr"),
        ("Ihr Konto wurde gesperrt, bitte klicken Sie", "de"),
        ("Akun anda telah diblokir, silakan klik untuk verifikasi", "id"),
        ("Sua conta foi bloqueada, por favor clique você", "pt"),
    ])
    def test_latin_languages(self, detector, text, expected):
        assert detector.detect_code(text) == expected

    @pytest.mark.parametrize("text,expected", [
        ("お客様のアカウントをください確認です", "ja"),
        ("आपका खाता निलंबित है कृपया", "hi"),
        ("您的账户请点击银行", "zh"),
        ("ваш счет заблокирован пожалуйста банк", "ru"),
    ])
    def test_non_latin_languages(self, detector, text, expected):
        assert detector.detect_code(text) == expected

    def test_empty_defaults_english(self, detector):
        assert detector.detect_code("") == "en"

    def test_single_shared_word_not_enough(self, detector):
        # One occurrence of "bank" must not flip an English text.
        assert detector.detect_code(
            "State Bank of India: a payment was attempted"
        ) == "en"

    def test_url_only_text_defaults(self, detector):
        assert detector.detect_code("https://evil.com/x") == "en"

    def test_confidence_bounded(self, detector):
        result = detector.detect(
            "Su cuenta ha sido bloqueada por favor haga clic"
        )
        assert 0.0 <= result.confidence <= 1.0
        assert result.marker_hits > 0
