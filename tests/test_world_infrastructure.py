"""Tests for the web-infrastructure builder."""

import datetime as dt

import pytest

from repro.net.asn import AsRegistry
from repro.types import ScamType
from repro.utils.rng import derive
from repro.world.infrastructure import (
    CA_VALIDITY_DAYS,
    FREE_HOSTING_WEIGHTS,
    InfrastructureBuilder,
    REGISTRAR_WEIGHTS,
    SHORTENER_BASE_WEIGHTS,
    TLD_WEIGHTS,
)

START = dt.date(2022, 6, 1)


@pytest.fixture()
def builder():
    return InfrastructureBuilder(
        derive(31, "infra-test"), as_registry=AsRegistry()
    )


class TestDomainRegistration:
    def test_unique_fqdns(self, builder):
        names = {
            builder.register_domain("c1", ScamType.BANKING, "TestBank",
                                    START).fqdn
            for _ in range(150)
        }
        assert len(names) == 150

    def test_registered_domain_under_fqdn(self, builder):
        asset = builder.register_domain("c1", ScamType.BANKING, "B", START)
        assert asset.fqdn.endswith(asset.registered_domain) or \
            asset.fqdn == asset.registered_domain

    def test_free_hosting_has_no_registrar(self, builder):
        free = [
            builder.register_domain("c1", ScamType.BANKING, None, START)
            for _ in range(300)
        ]
        free = [a for a in free if a.is_free_hosting]
        assert free, "at least some assets should use free hosting"
        assert all(a.registrar is None for a in free)
        assert all(a.tld in FREE_HOSTING_WEIGHTS for a in free)

    def test_registered_domains_have_known_registrar(self, builder):
        assets = [
            builder.register_domain("c1", ScamType.DELIVERY, "DHL", START)
            for _ in range(100)
        ]
        for asset in assets:
            if not asset.is_free_hosting:
                assert asset.registrar in REGISTRAR_WEIGHTS

    def test_tlds_come_from_catalogue(self, builder):
        asset = builder.register_domain("c1", ScamType.BANKING, None, START)
        if not asset.is_free_hosting:
            assert asset.tld in TLD_WEIGHTS

    def test_gname_bias_for_government(self):
        builder = InfrastructureBuilder(
            derive(77, "gname"), as_registry=AsRegistry()
        )
        gov_counts = {"Gname": 0, "total": 0}
        for _ in range(400):
            asset = builder.register_domain("c", ScamType.GOVERNMENT, None,
                                            START)
            if asset.registrar is not None:
                gov_counts["total"] += 1
                if asset.registrar == "Gname":
                    gov_counts["Gname"] += 1
        # Gname's base share is ~6%; the bias must lift it well above.
        assert gov_counts["Gname"] / gov_counts["total"] > 0.15

    def test_apk_flag_override(self, builder):
        asset = builder.register_domain("c1", ScamType.BANKING, None, START,
                                        serves_apk=True)
        assert asset.serves_apk


class TestCertificates:
    def test_certificates_have_valid_dates(self, builder):
        for _ in range(60):
            asset = builder.register_domain("c1", ScamType.BANKING, None,
                                            START)
            for cert in asset.certificates:
                assert cert.expires_at > cert.issued_at
                validity = (cert.expires_at - cert.issued_at).days
                assert validity == CA_VALIDITY_DAYS[cert.issuer]

    def test_some_hosts_lack_tls(self, builder):
        assets = [
            builder.register_domain("c1", ScamType.BANKING, None, START)
            for _ in range(200)
        ]
        assert any(not a.certificates for a in assets)
        assert any(a.certificates for a in assets)

    def test_landing_scheme_follows_tls(self, builder):
        asset = builder.register_domain("c1", ScamType.BANKING, None, START)
        expected = "https" if asset.certificates else "http"
        assert asset.landing_url.scheme == expected


class TestLinks:
    def test_shortened_fraction_reasonable(self, builder):
        assets = [
            builder.register_domain("c1", ScamType.BANKING, None, START)
            for _ in range(40)
        ]
        links = [builder.build_link(assets[i % 40], ScamType.BANKING)
                 for i in range(500)]
        short = [l for l in links if l.is_shortened]
        assert 0.18 < len(short) / len(links) < 0.45

    def test_short_tokens_unique(self, builder):
        asset = builder.register_domain("c1", ScamType.BANKING, None, START)
        tokens = set()
        for _ in range(300):
            link = builder.build_link(asset, ScamType.BANKING)
            if link.is_shortened:
                assert link.short_token not in tokens
                tokens.add(link.short_token)

    def test_shortener_host_known(self, builder):
        asset = builder.register_domain("c1", ScamType.BANKING, None, START)
        for _ in range(100):
            link = builder.build_link(asset, ScamType.BANKING)
            if link.is_shortened:
                assert link.shortener in SHORTENER_BASE_WEIGHTS
                assert link.url.host == link.shortener

    def test_direct_link_points_at_asset(self, builder):
        asset = builder.register_domain("c1", ScamType.BANKING, None, START)
        for _ in range(50):
            link = builder.build_link(asset, ScamType.BANKING)
            if not link.is_shortened:
                assert link.url.host == asset.fqdn
                return
        pytest.fail("no direct link produced in 50 draws")

    def test_whatsapp_link(self, builder):
        url = builder.build_whatsapp_link("447700900123")
        assert url.host == "wa.me"
        assert url.path == "/447700900123"


class TestHosting:
    def test_every_asset_has_addresses(self, builder):
        asset = builder.register_domain("c1", ScamType.BANKING, None, START)
        assert asset.hosting.addresses

    def test_cloudflare_fronting_fraction(self):
        builder = InfrastructureBuilder(
            derive(55, "cf"), as_registry=AsRegistry()
        )
        assets = [
            builder.register_domain("c", ScamType.BANKING, None, START)
            for _ in range(400)
        ]
        proxied = [a for a in assets if a.hosting.proxy_asn is not None]
        share = len(proxied) / len(assets)
        assert 0.12 < share < 0.27  # calibrated to 18.8% (§4.6)
        assert all(a.hosting.proxy_asn == 13335 for a in proxied)
