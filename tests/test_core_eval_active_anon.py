"""Tests for the §3.4 evaluation, the §6 case study, and anonymisation."""

import pytest

from repro.core.active import run_case_study
from repro.core.anonymize import (
    build_release,
    save_release,
    scrub_text,
    validate_release,
)
from repro.core.evaluation import evaluate_annotation
from repro.types import Forum


class TestEvaluation:
    @pytest.fixture(scope="class")
    def report(self, world, pipeline_run):
        return evaluate_annotation(world, pipeline_run.dataset,
                                   sample_size=150, seed=42)

    def test_sample_size(self, report):
        assert report.sample_size == 150
        assert 0 < report.english_sample_size <= 150

    def test_irr_in_paper_band(self, report):
        # Paper: brands 0.82, scam 0.94, lures 0.85 — near-perfect bands.
        assert report.irr.brands > 0.6
        assert report.irr.scam_types > 0.75
        assert report.irr.lures > 0.6

    def test_model_agreement_in_paper_band(self, report):
        # Paper: brands 0.85, scam 0.93, lures 0.70.
        assert report.model_vs_consensus.brands > 0.6
        assert report.model_vs_consensus.scam_types > 0.75
        assert report.model_vs_consensus.lures > 0.5

    def test_deterministic_under_seed(self, world, pipeline_run, report):
        again = evaluate_annotation(world, pipeline_run.dataset,
                                    sample_size=150, seed=42)
        assert again.irr == report.irr

    def test_different_seed_changes_sample(self, world, pipeline_run, report):
        other = evaluate_annotation(world, pipeline_run.dataset,
                                    sample_size=150, seed=99)
        assert (other.irr != report.irr
                or other.model_vs_consensus != report.model_vs_consensus)


class TestCaseStudy:
    @pytest.fixture(scope="class")
    def study(self, world, pipeline_run):
        return run_case_study(world, pipeline_run.dataset, sample_posts=200)

    def test_sample_from_twitter(self, study, pipeline_run):
        twitter = pipeline_run.dataset.by_forum(Forum.TWITTER)
        assert study.sampled_reports <= min(200, len(twitter))

    def test_urls_investigated(self, study):
        assert 0 < study.investigated_urls <= study.sampled_reports

    def test_some_short_links_dead(self, study):
        # Shortened URLs die fast (§2); a real-time crawl still hits some
        # dead ones because reports lag receipt.
        assert study.dead_short_links >= 0

    def test_apks_found_and_labelled(self, study):
        assert study.apk_downloads > 0
        assert len(study.family_verdicts) == study.apk_downloads

    def test_androzoo_knows_nothing(self, study):
        assert study.androzoo_hits == 0  # §3.3.5: fresh droppers

    def test_smsspy_dominant(self, study):
        distribution = study.family_distribution()
        # With very few samples the family draw is noisy; the dominance
        # claim only holds at Table 19's sample sizes.
        if sum(distribution.values()) >= 5:
            assert study.dominant_family == "SMSspy"

    def test_investigations_recorded(self, study):
        assert len(study.investigations) == study.investigated_urls
        for investigation in study.investigations:
            if investigation.apk is not None:
                assert investigation.android_kind == "apk_download"

    def test_deterministic(self, world, pipeline_run, study):
        again = run_case_study(world, pipeline_run.dataset, sample_posts=200)
        assert again.apk_downloads == study.apk_downloads
        assert again.family_distribution() == study.family_distribution()


class TestScrubText:
    def test_urls_removed(self):
        assert "[URL]" in scrub_text("visit https://evil.com/x now")
        assert "evil.com" not in scrub_text("visit https://evil.com/x now")

    def test_phones_removed(self):
        assert "[PHONE]" in scrub_text("call +44 7700 900123 now")

    def test_emails_removed(self):
        assert "[EMAIL]" in scrub_text("mail me at a.scammer@gmail.com ok")

    def test_names_removed(self):
        assert "[NAME]" in scrub_text("Hi Anna, are we still on?")

    def test_plain_text_unchanged(self):
        text = "your account is locked"
        assert scrub_text(text) == text


class TestRelease:
    @pytest.fixture(scope="class")
    def rows(self, enriched):
        return build_release(enriched)

    def test_row_per_record(self, rows, enriched):
        assert len(rows) == len(enriched.dataset)

    def test_no_pii_survives(self, rows):
        assert validate_release(rows) == []

    def test_sender_classes_valid(self, rows):
        for row in rows:
            assert row.sender_id_class in (None, "phone number", "email",
                                           "alphanumeric")

    def test_hlr_fields_only_for_phones(self, rows):
        for row in rows:
            if row.sender_id_class != "phone number":
                assert row.sender_original_operator is None

    def test_save_release(self, rows, tmp_path):
        path = tmp_path / "release.jsonl"
        written = save_release(rows, path)
        assert written == len(rows)
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == written

    def test_save_refuses_pii(self, rows, tmp_path):
        import copy
        bad = copy.deepcopy(rows[:2])
        bad[0].text = "visit https://evil.com/x"
        with pytest.raises(ValueError):
            save_release(bad, tmp_path / "bad.jsonl")

    def test_appendix_c_fields_present(self, rows, tmp_path):
        payload = rows[0].to_json_dict()
        for field in ("sender_id", "sender_id_type",
                      "sender_id_original_mno", "sender_id_origin_country",
                      "text_message", "translated_text_message",
                      "url_shortener", "brand_impersonated",
                      "scam_category", "lure_principles", "language"):
            assert field in payload
