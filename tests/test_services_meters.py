"""Tests for service metering (rate limits, quotas, simulated clock)."""

import pytest

from repro.errors import QuotaExhausted, RateLimitExceeded
from repro.services.base import (
    RequestLog,
    ServiceMeter,
    SimClock,
    wait_and_charge,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)


class TestServiceMeter:
    def test_burst_allows_initial_calls(self):
        meter = ServiceMeter(service="t", clock=SimClock(), rate=1, burst=5)
        for _ in range(5):
            meter.charge()
        assert meter.used == 5

    def test_rate_limit_raised_when_exhausted(self):
        meter = ServiceMeter(service="t", clock=SimClock(), rate=1, burst=1)
        meter.charge()
        with pytest.raises(RateLimitExceeded) as excinfo:
            meter.charge()
        assert excinfo.value.retry_after > 0
        assert excinfo.value.retryable

    def test_refill_after_waiting(self):
        clock = SimClock()
        meter = ServiceMeter(service="t", clock=clock, rate=2, burst=1)
        meter.charge()
        clock.advance(0.5)  # refills one token at rate=2
        meter.charge()
        assert meter.used == 2

    def test_quota_exhaustion(self):
        clock = SimClock()
        meter = ServiceMeter(service="t", clock=clock, rate=100, burst=100,
                             quota=3)
        for _ in range(3):
            meter.charge()
        with pytest.raises(QuotaExhausted):
            meter.charge()
        assert meter.remaining_quota == 0

    def test_remaining_quota_none_when_unlimited(self):
        meter = ServiceMeter(service="t", clock=SimClock())
        assert meter.remaining_quota is None

    def test_wait_and_charge_advances_clock(self):
        clock = SimClock()
        meter = ServiceMeter(service="t", clock=clock, rate=10, burst=1)
        wait_and_charge(meter)
        waited = wait_and_charge(meter)
        assert waited > 0
        assert clock.now > 0

    def test_wait_and_charge_terminates_on_large_clock(self):
        # Regression: float absorption at large clock values caused an
        # infinite retry loop.
        clock = SimClock(start=1e12)
        meter = ServiceMeter(service="t", clock=clock, rate=1000, burst=1)
        for _ in range(50):
            wait_and_charge(meter)
        assert meter.used == 50


class TestRequestLog:
    def test_counts(self):
        log = RequestLog()
        log.record("hlr")
        log.record("hlr")
        log.record("whois")
        assert log.count("hlr") == 2
        assert log.count("missing") == 0
        assert log.snapshot() == {"hlr": 2, "whois": 1}
