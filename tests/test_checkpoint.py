"""Unit tests for the checkpoint subsystem's building blocks.

The differential kill harness (``test_checkpoint_equivalence.py``)
proves the end-to-end guarantee; these tests pin the pieces it rests on:
the value/exception codec, the state registry, journal creation and
corruption recovery, manifest mismatch rejection, and the CLI's early
input validation.
"""

import json
import pickle

import pytest

from repro.checkpoint import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    CheckpointSession,
    CheckpointWarning,
    RunJournal,
    StateRegistry,
    decode_exception,
    decode_value,
    encode_exception,
    encode_value,
    resume_pipeline,
)
from repro.cli import main
from repro.core.pipeline import run_pipeline
from repro.errors import (
    CheckpointError,
    CheckpointMismatch,
    CircuitOpen,
    ConfigurationError,
    RateLimitExceeded,
    ServiceError,
    ServiceUnavailable,
    SimulatedCrash,
)
from repro.exec import ExecutionPolicy
from repro.exec.cache import EnrichmentCache, EntryKind
from repro.faults import CrashPoint, FaultPlan, build_fault_plan
from repro.world.scenario import ScenarioConfig, build_world

from tests.fingerprints import fingerprint_run


# -- codec: values -------------------------------------------------------------


@pytest.mark.parametrize("value", [
    None,
    42,
    "text",
    {"nested": {"list": [1, 2, 3]}},
    ("a", 1, None),
])
def test_value_codec_round_trips(value):
    assert decode_value(encode_value(value)) == value


def test_value_codec_rejects_garbage():
    with pytest.raises(CheckpointError):
        decode_value({"pickle": "not base64 pickle!!"})
    with pytest.raises(CheckpointError):
        decode_value({})


# -- codec: exceptions (satellite: structured failure round-trip) --------------


@pytest.mark.parametrize("exc", [
    ServiceError("boom", service="whois", retryable=True),
    ServiceError("perm", service="hlr", retryable=False),
    RateLimitExceeded("slow down", service="virustotal", retry_after=2.5),
    ServiceUnavailable("down", service="gsb", permanent=True),
    ServiceUnavailable("blip", service="gsb", permanent=False),
    CircuitOpen("open", service="crtsh"),
])
def test_exception_codec_round_trips(exc):
    rebuilt = decode_exception(encode_exception(exc))
    assert type(rebuilt) is type(exc)
    assert str(rebuilt) == str(exc)
    assert rebuilt.service == exc.service
    assert rebuilt.retryable == exc.retryable
    if isinstance(exc, RateLimitExceeded):
        assert rebuilt.retry_after == exc.retry_after
    if isinstance(exc, ServiceUnavailable):
        assert rebuilt.permanent == exc.permanent


def test_exception_codec_unknown_type_degrades_to_service_error():
    record = {"type": "NoSuchError", "message": "m", "service": "s",
              "retryable": True}
    rebuilt = decode_exception(record)
    assert type(rebuilt) is ServiceError
    assert rebuilt.retryable is True
    # Types outside the ServiceError tree never come back as themselves.
    rebuilt = decode_exception({"type": "ValueError", "message": "m"})
    assert type(rebuilt) is ServiceError


def test_cache_failure_entries_carry_the_exception():
    """put_failure stores the instance; the journal codec round-trips it."""
    cache = EnrichmentCache()
    original = RateLimitExceeded("throttled", service="whois",
                                 retry_after=3.0)
    cache.put_failure("whois", "example.com", kind="rate_limit",
                      detail="throttled", attempts=4, exception=original)
    entry = cache.peek("whois", "example.com")
    assert entry.kind is EntryKind.FAILURE
    assert entry.failure_exception is original
    rebuilt = decode_exception(encode_exception(entry.failure_exception))
    assert type(rebuilt) is RateLimitExceeded
    assert rebuilt.retry_after == 3.0
    # Equality ignores the exception object: two records of the same
    # failure compare equal even though exception instances never do.
    twin = cache.put_failure("whois", "other.com", kind="rate_limit",
                             detail="throttled", attempts=4,
                             exception=RateLimitExceeded(
                                 "throttled", service="whois",
                                 retry_after=3.0))
    assert entry == twin


# -- state registry ------------------------------------------------------------


class _Cell:
    """Minimal restorable object for registry tests."""

    def __init__(self, value):
        self.value = value

    def state_dict(self):
        return {"value": self.value}

    def restore_state(self, state):
        self.value = state["value"]


def test_registry_capture_diff_restore():
    a, b = _Cell(1), _Cell(2)
    registry = StateRegistry()
    registry.register("meter:a", a)
    registry.register("meter:b", b)
    before = registry.capture()
    a.value = 10
    after = registry.capture()
    delta = StateRegistry.diff(before, after)
    assert set(delta) == {"meter:a"}          # only the changed key
    a.value = 99
    registry.restore(after)
    assert (a.value, b.value) == (10, 2)


def test_registry_rejects_objects_without_the_protocol():
    registry = StateRegistry()
    with pytest.raises(CheckpointError):
        registry.register("meter:x", object())


def test_registry_restore_unknown_key():
    registry = StateRegistry()
    registry.register("meter:a", _Cell(1))
    # proxy: keys may legitimately vanish on resume (a --crash-at rule
    # wrapped a service the crash-free resumed plan leaves bare).
    registry.restore({"proxy:ghost": {"calls": 5}})
    with pytest.raises(CheckpointError):
        registry.restore({"meter:ghost": {"value": 5}})


# -- journal creation + recovery -----------------------------------------------


def test_journal_create_rejects_bad_directories(tmp_path):
    not_a_dir = tmp_path / "file"
    not_a_dir.write_text("x")
    with pytest.raises(ConfigurationError):
        RunJournal.create(not_a_dir)
    cluttered = tmp_path / "cluttered"
    cluttered.mkdir()
    (cluttered / "stray.txt").write_text("x")
    with pytest.raises(ConfigurationError, match="not empty"):
        RunJournal.create(cluttered)


def test_journal_create_rejects_existing_journal(tmp_path):
    d = tmp_path / "ck"
    d.mkdir()
    (d / MANIFEST_NAME).write_text("{}")
    with pytest.raises(ConfigurationError, match="resume"):
        RunJournal.create(d)


def test_journal_load_requires_manifest(tmp_path):
    with pytest.raises(CheckpointError, match="missing"):
        RunJournal.load(tmp_path)


def test_journal_load_rejects_future_format(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": 999}))
    with pytest.raises(CheckpointError, match="format"):
        RunJournal.load(tmp_path)


def _journal_with_records(tmp_path, n=3):
    journal = RunJournal.create(tmp_path / "ck")
    journal.write_manifest({"scenario": {}})
    for i in range(n):
        journal.append({"type": "lookup", "service": "whois", "field": "f",
                        "subject": f"s{i}", "outcome": "value",
                        "value": encode_value(i), "effects": {}})
    journal.close()
    return journal.directory


def test_journal_recovers_from_a_partial_final_record(tmp_path):
    d = _journal_with_records(tmp_path)
    path = d / JOURNAL_NAME
    raw = path.read_bytes()
    path.write_bytes(raw[:-10])              # torn mid-write
    with pytest.warns(CheckpointWarning, match="partial final record"):
        journal = RunJournal.load(d)
    assert len(journal.records) == 2
    assert journal.recovered
    # The corrupt tail was truncated away: a second load is clean.
    assert len(RunJournal.load(d).records) == 2


def test_journal_recovers_from_a_malformed_record(tmp_path):
    d = _journal_with_records(tmp_path)
    path = d / JOURNAL_NAME
    with open(path, "ab") as handle:
        handle.write(b'{"type": "lookup", not json}\n')
    with pytest.warns(CheckpointWarning, match="malformed"):
        journal = RunJournal.load(d)
    assert len(journal.records) == 3


def test_journal_recovers_from_a_corrupt_snapshot(tmp_path):
    journal = RunJournal.create(tmp_path / "ck")
    journal.write_manifest({"scenario": {}})
    record = journal.write_snapshot("collection.pkl", {"stage": "payload"})
    journal.append({"type": "barrier", "stage": "collection",
                    "state": {}, **record})
    journal.close()
    (journal.directory / "collection.pkl").write_bytes(b"flipped bits")
    with pytest.warns(CheckpointWarning, match="corrupt snapshot"):
        loaded = RunJournal.load(journal.directory)
    assert loaded.records == []              # barrier dropped with snapshot


def test_snapshot_round_trip(tmp_path):
    journal = RunJournal.create(tmp_path / "ck")
    record = journal.write_snapshot("collection.pkl", {"k": [1, 2]})
    assert journal.load_snapshot(record) == {"k": [1, 2]}
    journal.close()


def test_journal_kill_point_raises_after_the_nth_write(tmp_path):
    journal = RunJournal.create(tmp_path / "ck", kill_after_writes=2)
    journal.write_manifest({})
    journal.append({"type": "complete"})
    with pytest.raises(SimulatedCrash):
        journal.append({"type": "complete"})
    # The record itself was durably written before the crash fired.
    assert len((journal.directory / JOURNAL_NAME)
               .read_text().splitlines()) == 2


# -- manifest mismatch ---------------------------------------------------------


_SMALL = ScenarioConfig(seed=5, n_campaigns=3)


def _record_small_run(directory, *, kill_after_writes=None, profile="none"):
    session = CheckpointSession.record(directory,
                                       kill_after_writes=kill_after_writes)
    return run_pipeline(build_world(_SMALL),
                        fault_plan=build_fault_plan(profile, seed=_SMALL.seed),
                        checkpoint=session)


def test_resume_rejects_a_stale_code_version(tmp_path):
    """A journal written by different code must not be replayed.

    (The scenario itself cannot mismatch through ``resume_pipeline`` —
    the resumed world is *built from* the manifest's scenario — so the
    drift detector's job is config/faults/execution/code identity.)"""
    d = tmp_path / "ck"
    _record_small_run(d)
    manifest = json.loads((d / MANIFEST_NAME).read_text())
    manifest["code"] = "0" * 64
    (d / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(CheckpointMismatch, match="code"):
        resume_pipeline(d)


def test_resume_rejects_a_different_fault_plan(tmp_path):
    d = tmp_path / "ck"
    _record_small_run(d, profile="flaky")
    with pytest.raises(CheckpointMismatch, match="faults"):
        resume_pipeline(d, fault_plan=build_fault_plan("outage",
                                                       seed=_SMALL.seed))


def test_resume_of_a_completed_run_is_idempotent(tmp_path):
    d = tmp_path / "ck"
    first = _record_small_run(d)
    resumed = resume_pipeline(d)
    assert fingerprint_run(resumed) == fingerprint_run(first)


def test_crash_point_rule_fires_and_is_stripped_on_resume():
    plan = FaultPlan(seed=1, rules=[CrashPoint("whois", 1)])
    with pytest.raises(SimulatedCrash):
        run_pipeline(build_world(_SMALL), fault_plan=plan)
    stripped = plan.without_crash_points()
    assert stripped.rules == ()
    assert stripped.seed == plan.seed


# -- corrupted journal end-to-end (satellite: resume survives torn tails) ------


def test_resume_survives_a_torn_journal_tail(tmp_path):
    baseline = run_pipeline(build_world(_SMALL),
                            fault_plan=build_fault_plan("none",
                                                        seed=_SMALL.seed))
    d = tmp_path / "ck"
    with pytest.raises(SimulatedCrash):
        _record_small_run(d, kill_after_writes=40)
    path = d / JOURNAL_NAME
    path.write_bytes(path.read_bytes()[:-7])     # tear the last record
    with pytest.warns(CheckpointWarning, match="partial final record"):
        resumed = resume_pipeline(d)
    assert fingerprint_run(resumed) == fingerprint_run(baseline)


def test_resume_survives_garbage_appended_to_the_journal(tmp_path):
    baseline = run_pipeline(build_world(_SMALL),
                            fault_plan=build_fault_plan("none",
                                                        seed=_SMALL.seed))
    d = tmp_path / "ck"
    with pytest.raises(SimulatedCrash):
        _record_small_run(d, kill_after_writes=40)
    with open(d / JOURNAL_NAME, "ab") as handle:
        handle.write(b"\x00\xff garbage \xfe\n")
    with pytest.warns(CheckpointWarning):
        resumed = resume_pipeline(d)
    assert fingerprint_run(resumed) == fingerprint_run(baseline)


# -- CLI validation (satellite: fail fast on bad inputs) -----------------------


_CLI = ["--seed", "5", "--campaigns", "3", "--quiet"]


def test_cli_rejects_zero_workers(capsys):
    assert main(_CLI + ["--workers", "0", "stats"]) == 2
    assert "--workers must be >= 1" in capsys.readouterr().err


@pytest.mark.parametrize("spec", ["whois", "whois:", ":5", "whois:x",
                                  "whois:-1"])
def test_cli_rejects_bad_crash_at(spec, capsys):
    assert main(_CLI + ["--crash-at", spec, "stats"]) == 2
    assert "--crash-at" in capsys.readouterr().err


def test_cli_rejects_checkpoint_dir_that_is_a_file(tmp_path, capsys):
    target = tmp_path / "file"
    target.write_text("x")
    assert main(_CLI + ["--checkpoint-dir", str(target), "stats"]) == 2
    assert "not a directory" in capsys.readouterr().err


def test_cli_rejects_non_empty_checkpoint_dir(tmp_path, capsys):
    d = tmp_path / "full"
    d.mkdir()
    (d / "stray.txt").write_text("x")
    assert main(_CLI + ["--checkpoint-dir", str(d), "stats"]) == 2
    assert "not empty" in capsys.readouterr().err


def test_cli_points_existing_journal_at_resume(tmp_path, capsys):
    d = tmp_path / "ck"
    d.mkdir()
    (d / MANIFEST_NAME).write_text("{}")
    assert main(_CLI + ["--checkpoint-dir", str(d), "stats"]) == 2
    assert "repro resume" in capsys.readouterr().err


def test_cli_resume_requires_a_journal(tmp_path, capsys):
    assert main(["resume", "--checkpoint-dir", str(tmp_path)]) == 2
    assert MANIFEST_NAME in capsys.readouterr().err


def test_cli_crash_then_resume_round_trip(tmp_path, capsys):
    d = tmp_path / "ck"
    crash = _CLI + ["--faults", "flaky", "--checkpoint-dir", str(d),
                    "--crash-at", "whois:3", "report"]
    assert main(crash) == 75
    err = capsys.readouterr().err
    assert "repro: crashed" in err and "repro resume" in err
    assert main(["resume", "--checkpoint-dir", str(d), "--quiet"]) == 0
    resumed_report = capsys.readouterr().out
    assert main(_CLI + ["--faults", "flaky", "report"]) == 0
    assert resumed_report == capsys.readouterr().out


def test_execution_policy_describe():
    assert (ExecutionPolicy(workers=4).describe()
            == "workers=4 cache=on pool=thread")
    assert (ExecutionPolicy(cache=False).describe()
            == "workers=1 cache=off pool=thread")
    assert (ExecutionPolicy(cache_max_entries=9).describe()
            == "workers=1 cache=on(max=9) pool=thread")
    assert (ExecutionPolicy(workers=4, pool="process").describe()
            == "workers=4 cache=on pool=process")
