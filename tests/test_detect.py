"""Tests for the detection baselines (features, NB, rules, evaluation)."""

import pytest

from repro.detect import (
    FeatureExtractor,
    NaiveBayesClassifier,
    RuleBasedFilter,
    evaluate_classifier,
    train_test_split,
)
from repro.sms.senderid import classify_sender_id

SMISH = ("URGENT: your bank account has been suspended, verify now at "
         "https://secure-bank-login.xyz/verify or it will be closed")
HAM = "Hey, running 10 minutes late for lunch, order me the soup please"


class TestFeatureExtractor:
    def test_word_features(self):
        features = FeatureExtractor().extract("hello hello world")
        assert features["w:hello"] == 2.0
        assert features["w:world"] == 1.0

    def test_url_structure(self):
        features = FeatureExtractor().extract(SMISH)
        assert features["s:has_url"] == 1.0
        assert features["s:url_bad_tld"] == 1.0
        assert features["s:url_hyphens"] == 2.0

    def test_no_url(self):
        features = FeatureExtractor().extract(HAM)
        assert features["s:has_url"] == 0.0

    def test_shortener_flag(self):
        features = FeatureExtractor().extract("go to https://bit.ly/x now")
        assert features["s:url_shortener"] == 1.0

    def test_apk_flag(self):
        features = FeatureExtractor().extract(
            "download evil.com/internet.apk today"
        )
        assert features["s:url_apk"] == 1.0

    def test_sender_features(self):
        sender = classify_sender_id("SBIBNK")
        features = FeatureExtractor().extract("hi", sender)
        assert features["s:sender_alphanumeric"] == 1.0

    def test_leet_normalised_words(self):
        features = FeatureExtractor().extract("N3tfl!x payment failed")
        assert "w:netflix" in features

    def test_words_can_be_disabled(self):
        features = FeatureExtractor(include_words=False).extract(SMISH)
        assert not any(name.startswith("w:") for name in features)


class TestNaiveBayes:
    def _toy_model(self):
        extractor = FeatureExtractor()
        texts = [
            (SMISH, "smish"),
            ("Your parcel needs a customs fee: pay at evil-track.top/x",
             "smish"),
            ("Account locked! click fast-verify.xyz/a immediately", "smish"),
            (HAM, "ham"),
            ("See you at the gym tomorrow morning", "ham"),
            ("Dinner at ours on Friday? Mum's cooking", "ham"),
        ]
        model = NaiveBayesClassifier()
        model.fit([extractor.extract(t) for t, _ in texts],
                  [label for _, label in texts])
        return model, extractor

    def test_fit_and_predict(self):
        model, extractor = self._toy_model()
        assert model.predict(extractor.extract(
            "verify your account at bad-login.xyz/verify now"
        )) == "smish"
        assert model.predict(extractor.extract(
            "meet you at the gym tomorrow"
        )) == "ham"

    def test_probabilities_sum_to_one(self):
        model, extractor = self._toy_model()
        proba = model.predict_proba(extractor.extract(SMISH))
        assert sum(proba.values()) == pytest.approx(1.0)
        assert proba["smish"] > proba["ham"]

    def test_unseen_features_handled(self):
        model, _ = self._toy_model()
        assert model.predict({"w:zzz_never_seen": 3.0}) in ("smish", "ham")

    def test_classes_and_vocab(self):
        model, _ = self._toy_model()
        assert model.classes == ["ham", "smish"]
        assert model.vocabulary_size > 10

    def test_top_features(self):
        model, _ = self._toy_model()
        top = model.top_features("smish", 5)
        assert len(top) == 5

    def test_unfitted_raises(self):
        with pytest.raises(ValueError):
            NaiveBayesClassifier().predict({"w:x": 1.0})

    def test_empty_training_raises(self):
        with pytest.raises(ValueError):
            NaiveBayesClassifier().fit([], [])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            NaiveBayesClassifier().fit([{"a": 1.0}], [])


class TestRuleFilter:
    def test_flags_classic_smish(self):
        verdict = RuleBasedFilter().score(SMISH)
        assert verdict.is_smishing
        assert "has_url" in verdict.fired_rules

    def test_passes_ham(self):
        assert not RuleBasedFilter().predict(HAM)

    def test_apk_rule(self):
        verdict = RuleBasedFilter().score(
            "install the app: evil.com/internet.apk right now to verify"
        )
        assert "apk_link" in verdict.fired_rules

    def test_threshold_tunable(self):
        text = "please verify your account"
        strict = RuleBasedFilter(threshold=10)
        lax = RuleBasedFilter(threshold=1)
        assert not strict.predict(text)
        assert lax.predict(text)

    def test_overlong_number_rule(self):
        sender = classify_sender_id("+919876543210123456")
        verdict = RuleBasedFilter().score("hello", sender)
        assert "overlong_number" in verdict.fired_rules


class TestEvaluation:
    def test_split_shapes(self):
        train, test = train_test_split(list(range(100)), test_fraction=0.25)
        assert len(train) == 75
        assert len(test) == 25
        assert sorted(train + test) == list(range(100))

    def test_split_deterministic(self):
        a = train_test_split(list(range(50)), seed=3)
        b = train_test_split(list(range(50)), seed=3)
        assert a == b

    def test_bad_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2], test_fraction=0.0)

    def test_perfect_predictions(self):
        result = evaluate_classifier(["a", "b", "a"], ["a", "b", "a"])
        assert result.accuracy == 1.0
        assert result.macro_f1 == 1.0

    def test_metrics_computed(self):
        truths = ["a", "a", "b", "b"]
        predictions = ["a", "b", "b", "b"]
        result = evaluate_classifier(truths, predictions)
        assert result.accuracy == 0.75
        assert result.per_class["a"].precision == 1.0
        assert result.per_class["a"].recall == 0.5
        assert result.per_class["b"].recall == 1.0
        assert result.confusion[("a", "b")] == 1

    def test_table_rendering(self):
        result = evaluate_classifier(["x", "y"], ["x", "x"])
        text = result.to_table().to_text()
        assert "accuracy" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            evaluate_classifier([], [])


class TestEndToEndDetection:
    def test_nb_beats_rules_on_scam_typing(self, world, pipeline_run):
        """The paper's §7.2 claim: a model trained on the labelled
        dataset beats static rules — here on multi-class scam typing,
        which rules cannot do at all (binary only)."""
        extractor = FeatureExtractor()
        labelled = [
            (record, world.event(record.truth_event_id).scam_type)
            for record in pipeline_run.dataset
            if record.truth_event_id and world.event(record.truth_event_id)
        ]
        train, test = train_test_split(labelled, test_fraction=0.3, seed=5)
        model = NaiveBayesClassifier()
        model.fit(
            [extractor.extract(r.text, r.sender) for r, _ in train],
            [label for _, label in train],
        )
        predictions = model.predict_many(
            extractor.extract(r.text, r.sender) for r, _ in test
        )
        result = evaluate_classifier([label for _, label in test],
                                     predictions)
        assert result.accuracy > 0.6
        assert result.macro_f1 > 0.35
