"""Tests for the shared taxonomies and the exception hierarchy."""

import pytest

from repro import errors
from repro.types import (
    DeviceProfile,
    Forum,
    GsbStatus,
    LurePrinciple,
    PhoneNumberType,
    ScamType,
    SenderIdKind,
    TldClass,
    URL_BEARING_SCAM_TYPES,
    Verdict,
)


class TestScamType:
    def test_eight_categories(self):
        assert len(list(ScamType)) == 8  # seven scams + spam (Table 10)

    def test_conversational_flags(self):
        assert ScamType.WRONG_NUMBER.is_conversational
        assert ScamType.HEY_MUM_DAD.is_conversational
        assert not ScamType.BANKING.is_conversational

    def test_short_codes_unique(self):
        codes = [scam.short_code for scam in ScamType]
        assert len(codes) == len(set(codes))

    def test_url_bearing_excludes_conversational(self):
        assert ScamType.WRONG_NUMBER not in URL_BEARING_SCAM_TYPES
        assert ScamType.HEY_MUM_DAD not in URL_BEARING_SCAM_TYPES
        assert ScamType.BANKING in URL_BEARING_SCAM_TYPES

    def test_string_round_trip(self):
        assert ScamType("hey mum/dad") is ScamType.HEY_MUM_DAD


class TestLurePrinciple:
    def test_seven_principles(self):
        assert len(list(LurePrinciple)) == 7  # Stajano & Wilson

    def test_values_match_paper_phrasing(self):
        assert LurePrinciple.NEED_AND_GREED.value == "need and greed"
        assert LurePrinciple.TIME_URGENCY.value == "time/urgency"


class TestPhoneNumberType:
    def test_validity_split_matches_table3(self):
        invalid = {t for t in PhoneNumberType if not t.is_valid}
        assert invalid == {
            PhoneNumberType.BAD_FORMAT,
            PhoneNumberType.LANDLINE,
            PhoneNumberType.VOICEMAIL_ONLY,
        }


class TestSmallEnums:
    def test_forum_names(self):
        assert {f.value for f in Forum} == {
            "Twitter", "Reddit", "Smishtank", "Smishing.eu", "Pastebin"
        }

    def test_sender_kinds(self):
        assert len(list(SenderIdKind)) == 3

    def test_tld_classes_match_iana(self):
        assert len(list(TldClass)) == 6

    def test_verdicts(self):
        assert {v.value for v in Verdict} == {"clean", "suspicious",
                                              "malicious"}

    def test_gsb_statuses(self):
        assert GsbStatus.NOT_QUERIED.value == "not queried"

    def test_device_profiles(self):
        assert {d.value for d in DeviceProfile} == {"android", "ios",
                                                    "desktop"}


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for name in ("ConfigurationError", "ValidationError", "ServiceError",
                     "RateLimitExceeded", "ServiceUnavailable",
                     "AuthenticationError", "QuotaExhausted", "NotFound",
                     "ExtractionError", "NotAScreenshot", "ParseError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_rate_limit_carries_retry_after(self):
        exc = errors.RateLimitExceeded("slow down", service="x",
                                       retry_after=2.5)
        assert exc.retry_after == 2.5
        assert exc.retryable
        assert exc.service == "x"

    def test_permanent_unavailable_not_retryable(self):
        exc = errors.ServiceUnavailable("gone", permanent=True)
        assert not exc.retryable
        assert exc.permanent

    def test_temporary_unavailable_retryable(self):
        assert errors.ServiceUnavailable("blip").retryable

    def test_not_a_screenshot_is_extraction_error(self):
        assert issubclass(errors.NotAScreenshot, errors.ExtractionError)

    def test_service_errors_catchable_at_boundary(self):
        with pytest.raises(errors.ReproError):
            raise errors.QuotaExhausted("done", service="vt")
