"""Tests for geography and MNO registries."""

import pytest

from repro.errors import NotFound
from repro.world.geography import CountryRegistry, default_countries
from repro.world.mno import OperatorRegistry, default_operators


@pytest.fixture(scope="module")
def countries():
    return default_countries()


@pytest.fixture(scope="module")
def operators():
    return default_operators()


class TestCountryRegistry:
    def test_lookup_by_iso3(self, countries):
        assert countries.get("IND").name == "India"

    def test_lookup_by_iso2(self, countries):
        assert countries.get("in").iso3 == "IND"

    def test_unknown_raises(self, countries):
        with pytest.raises(NotFound):
            countries.get("XXX")

    def test_contains(self, countries):
        assert "GBR" in countries
        assert "ZZZ" not in countries

    def test_dial_code_lookup(self, countries):
        assert countries.by_dial_code("447700900123").iso3 == "GBR"

    def test_longest_dial_code_wins(self, countries):
        # +974 (Qatar) must beat +9 prefixes of other plans.
        assert countries.by_dial_code("97433123456").iso3 == "QAT"

    def test_nanp_resolves_to_usa(self, countries):
        assert countries.by_dial_code("15550104477").iso3 == "USA"

    def test_unknown_dial_code(self, countries):
        with pytest.raises(NotFound):
            countries.by_dial_code("0000000")

    def test_paper_countries_present(self, countries):
        # Every country in Tables 4 and 14 must exist.
        for iso3 in ("IND", "USA", "NLD", "GBR", "ESP", "AUS", "FRA",
                     "BEL", "IDN", "DEU", "COD", "KEN", "LKA", "MWI",
                     "NGA", "GLP", "QAT"):
            assert iso3 in countries

    def test_primary_language(self, countries):
        assert countries.get("ESP").primary_language == "es"

    def test_iteration_and_len(self, countries):
        assert len(list(countries)) == len(countries)


class TestOperatorRegistry:
    def test_vodafone_footprint(self, operators):
        vodafone = operators.get("Vodafone")
        assert len(vodafone.countries) == 18  # Table 4

    def test_airtel_footprint(self, operators):
        airtel = operators.get("AirTel")
        assert set(airtel.countries) == {"IND", "COD", "KEN", "LKA", "MWI",
                                         "NGA"}

    def test_unknown_operator(self, operators):
        with pytest.raises(NotFound):
            operators.get("Carrier of Atlantis")

    def test_in_country(self, operators):
        names = {op.name for op in operators.in_country("IND")}
        assert {"Vodafone", "AirTel", "BSNL Mobile", "Reliance Jio"} <= names

    def test_every_paper_country_has_an_operator(self, operators):
        for iso3 in ("IND", "USA", "NLD", "GBR", "ESP", "AUS", "FRA",
                     "BEL", "IDN", "DEU"):
            assert operators.in_country(iso3)

    def test_pick_for_country_returns_local(self, operators, rng):
        for _ in range(30):
            op = operators.pick_for_country("NLD", rng)
            assert op.operates_in("NLD")

    def test_pick_for_unknown_country_raises(self, operators, rng):
        with pytest.raises(NotFound):
            operators.pick_for_country("XXX", rng)

    def test_abuse_sampler_covers_pairs(self, operators, rng):
        sampler = operators.abuse_sampler()
        name, iso3 = sampler.sample(rng)
        assert operators.get(name).operates_in(iso3)

    def test_multi_country_weight_spread(self, operators, rng):
        # Vodafone must not dominate a market like NLD where strong
        # local operators exist.
        counts = {"Vodafone": 0, "other": 0}
        for _ in range(500):
            op = operators.pick_for_country("NLD", rng)
            key = "Vodafone" if op.name == "Vodafone" else "other"
            counts[key] += 1
        assert counts["other"] > counts["Vodafone"]
