"""Differential harness for the hostile-input hardening guarantee.

The quarantine layer's headline contract, proven three ways:

* **No crash**: for every hostile profile × worker count × pool backend,
  the pipeline completes without an uncaught exception.
* **Exact accounting**: every collected report lands in exactly one of
  three buckets — ``reports_curated + quarantined + reports_dropped ==
  reports_in`` — and the structured :class:`QuarantineRecord` ledger
  matches the counter.
* **Clean-subset identity**: the records built from the *clean* reports
  of a hostile run are byte-identical to the ``--hostile none`` run —
  same rows, same gap/limitation ledgers, same dataset-derived paper
  tables (only the collection-volume tables 1/15 legitimately move) —
  and the enrichment meters charge the same totals, because hostile
  reports are diverted before they can buy anything.

Plus the satellite regressions: adversarial-pack determinism, per-reason
sanitizer units, the ``CorruptPayload`` fault rule, the serve-path
quarantine smoke (hostile spikes must push the degradation controller,
then recover), the ``Url.apex`` malformed-host fix, and the curation
timestamp fuzz corpus.
"""

import dataclasses
import datetime as dt

import pytest

from repro.core.collection import RawReport
from repro.core.curation import Curator
from repro.core.pipeline import run_pipeline
from repro.core.quarantine import (
    QUARANTINE_REASONS,
    QuarantineRecord,
    Sanitizer,
    SanitizerLimits,
    quarantine_by_reason,
    stamp_epoch,
)
from repro.exec import SEQUENTIAL, ExecutionPolicy
from repro.faults import CorruptPayload, FaultPlan
from repro.imaging.vision_openai import OpenAiVisionExtractor
from repro.net.url import Url, extract_urls, try_parse_url
from repro.obs import Telemetry
from repro.serve import LoadSpec, ServeConfig, run_to_completion
from repro.types import Forum
from repro.utils.rng import derive
from repro.world.adversarial import (
    FLOOD_COPIES,
    FLOOD_REPORTERS,
    POISON_CLUSTER_SIZE,
    generate_hostile_posts,
)
from repro.world.scenario import ScenarioConfig, build_world

from tests.fingerprints import (
    charged_calls_from_telemetry,
    clean_subset_fingerprint,
    fingerprint_run,
)

SEED = 2
_CAMPAIGNS = 10
HOSTILE_PROFILES = ("noisy", "poison")
MATRIX_WORKERS = (1, 4)
MATRIX_POOLS = ("serial", "process")


def _run(profile: str, policy: ExecutionPolicy):
    """One full pipeline run on a hostile world, with telemetry."""
    world = build_world(ScenarioConfig(
        seed=SEED, n_campaigns=_CAMPAIGNS, hostile=profile))
    telemetry = Telemetry.create(clock=world.clock)
    run = run_pipeline(world, telemetry=telemetry, execution=policy)
    return run


@pytest.fixture(scope="module")
def clean_baseline():
    """The ``--hostile none`` reference arm of every differential."""
    run = _run("none", SEQUENTIAL)
    return {
        "run": run,
        "clean_subset": clean_subset_fingerprint(run),
        "charged": charged_calls_from_telemetry(run.telemetry),
    }


# -- the differential matrix --------------------------------------------------


@pytest.mark.parametrize("profile", HOSTILE_PROFILES)
def test_hostile_matrix_clean_subset_identical(profile, clean_baseline):
    """seeds {2} × hostile {noisy, poison} × workers {1, 4} ×
    pools {serial, process}: zero uncaught exceptions, exact three-bucket
    accounting, the clean-subset fingerprint byte-identical to the
    hostile-free run, and identical enrichment meter charges."""
    for pool in MATRIX_POOLS:
        for workers in MATRIX_WORKERS:
            policy = ExecutionPolicy(workers=workers, cache=True, pool=pool)
            run = _run(profile, policy)
            label = f"hostile={profile} pool={pool} workers={workers}"
            stats = run.curation_stats
            assert stats.reports_in == len(run.collection.reports), label
            assert (stats.reports_curated + stats.quarantined
                    + stats.reports_dropped == stats.reports_in), (
                f"{label}: three-bucket accounting broke "
                f"({stats.reports_curated} + {stats.quarantined} + "
                f"{stats.reports_dropped} != {stats.reports_in})")
            assert stats.quarantined > 0, label
            assert len(stats.quarantines) == stats.quarantined, label
            assert clean_subset_fingerprint(run) == \
                clean_baseline["clean_subset"], (
                f"{label}: clean-subset outputs diverged from the "
                f"--hostile none run")
            assert charged_calls_from_telemetry(run.telemetry) == \
                clean_baseline["charged"], (
                f"{label}: hostile reports changed enrichment charges")


def test_hostile_none_quarantines_nothing(clean_baseline):
    """The clean arm of the guarantee: the always-on sanitizer diverts
    zero clean reports, captures nothing in telemetry, and renders no
    Quarantine table — clean output stays byte-identical to pre-hostile
    behaviour."""
    run = clean_baseline["run"]
    stats = run.curation_stats
    assert stats.quarantined == 0
    assert stats.quarantines == []
    assert stats.reports_curated + stats.reports_dropped == stats.reports_in
    assert run.telemetry.quarantine_records == []
    assert "quarantine" not in run.telemetry.to_dict()
    assert "Quarantine" not in run.telemetry.summary()


def test_poison_ledger_captures_coordinated_abuse():
    """Every member of both flood bursts and the poison cluster is
    diverted — not just the copies past the threshold — and the ledger
    mirrors the counters, reason by reason."""
    run = _run("poison", SEQUENTIAL)
    by_reason = quarantine_by_reason(run.curation_stats.quarantines)
    assert by_reason["reporter_flood"] == len(FLOOD_REPORTERS) * FLOOD_COPIES
    assert by_reason["poison_cluster"] == POISON_CLUSTER_SIZE
    for record in run.curation_stats.quarantines:
        assert record.reason in QUARANTINE_REASONS
        assert record.stage == "curation"
        assert record.post_id.startswith("hx")
    flooded = {r.reporter for r in run.curation_stats.quarantines
               if r.reason == "reporter_flood"}
    assert flooded == set(FLOOD_REPORTERS)


def test_rerun_of_hostile_run_is_deterministic():
    first = _run("poison", ExecutionPolicy(workers=4, cache=True))
    second = _run("poison", ExecutionPolicy(workers=4, cache=True))
    assert fingerprint_run(first) == fingerprint_run(second)


# -- the adversarial pack -----------------------------------------------------


class TestAdversarialPack:
    def test_same_seed_same_posts(self):
        first = generate_hostile_posts(11, 800, "poison")
        second = generate_hostile_posts(11, 800, "poison")
        assert first == second

    def test_different_seeds_differ(self):
        assert generate_hostile_posts(11, 800, "poison") != \
            generate_hostile_posts(12, 800, "poison")

    def test_none_profile_is_empty(self):
        assert generate_hostile_posts(11, 800, "none") == []

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            generate_hostile_posts(11, 800, "zalgo")

    def test_posts_avoid_twitter_and_carry_no_attachments(self):
        """Twitter files volume-derived shutdown limitations and
        attachments draw from the vision RNG stream — hostile posts
        must perturb neither."""
        posts = generate_hostile_posts(7, 1600, "poison")
        assert posts
        for post in posts:
            assert post.forum is not Forum.TWITTER
            assert not post.attachments
            assert post.post_id.startswith("hx")

    def test_poison_extends_noisy(self):
        noisy = generate_hostile_posts(7, 1600, "noisy")
        poison = generate_hostile_posts(7, 1600, "poison")
        assert len(poison) == (len(noisy)
                               + len(FLOOD_REPORTERS) * FLOOD_COPIES
                               + POISON_CLUSTER_SIZE)
        assert poison[:len(noisy)] == noisy


# -- the sanitizer, reason by reason ------------------------------------------


def _report(body="Scam text: pay at fee.example.com", *, forum=Forum.SMISHTANK,
            author="reporter-1", structured=None, post_id="p1",
            screenshots=()):
    return RawReport(
        forum=forum, post_id=post_id, author=author,
        posted_at=dt.datetime(2022, 9, 1, 12, 0), body=body,
        screenshots=list(screenshots), structured=structured)


class TestSanitizerReasons:
    def _reason(self, report, limits=None):
        verdict = Sanitizer(limits).screen(report)
        return verdict.reason if verdict else None

    def test_clean_report_passes(self):
        assert self._reason(_report(structured={
            "timestamp": "2022-09-01 11:55", "sender_id": "+447700900111",
            "text": "Your parcel is waiting: pay at fee.example.com",
            "url": "https://fee.example.com/pay"})) is None

    def test_schema_violation_non_string_body(self):
        assert self._reason(_report(body=b"bytes not text")) == \
            "schema_violation"

    def test_schema_violation_non_string_field(self):
        assert self._reason(_report(structured={"text": 42})) == \
            "schema_violation"

    def test_oversize_body(self):
        assert self._reason(_report(body="x" * 20_000)) == "oversize_body"

    def test_oversize_structured_field(self):
        assert self._reason(_report(structured={
            "text": "y" * 3_000})) == "oversize_body"

    def test_unicode_anomaly(self):
        text = "ver​i‌f‍y" + "‮" * 10 + " your account"
        assert self._reason(_report(structured={"text": text})) == \
            "unicode_anomaly"

    def test_token_budget(self):
        assert self._reason(_report(
            body="claim " + "a" * 2_000 + " now")) == "token_budget"

    def test_malformed_url(self):
        assert self._reason(_report(structured={
            "text": "pay here", "url": "hxxp://phish..example[.]com"})) == \
            "malformed_url"

    def test_defanged_but_recoverable_url_passes(self):
        assert self._reason(_report(structured={
            "text": "pay here", "url": "hxxp://phish[.]example[.]com"})) \
            is None

    def test_invalid_timestamp(self):
        assert self._reason(_report(structured={
            "text": "pay here", "timestamp": "99/99/9999 99:99"})) == \
            "invalid_timestamp"

    def test_out_of_range_timestamp_year(self):
        assert self._reason(_report(structured={
            "text": "pay here", "timestamp": "9999-12-31 23:59:59"})) == \
            "invalid_timestamp"

    def test_reporter_flood_diverts_every_member(self):
        sanitizer = Sanitizer()
        burst = [_report(structured={"text": "same scam text here"},
                         author="flood-bot", post_id=f"p{i}")
                 for i in range(10)]
        sanitizer.observe_batch(burst)
        verdicts = [sanitizer.screen(r) for r in burst]
        assert all(v is not None and v.reason == "reporter_flood"
                   for v in verdicts)

    def test_poison_cluster_diverts_every_member(self):
        sanitizer = Sanitizer()
        cluster = [_report(structured={"text": "paypal.com is totes safe"},
                           author=f"citizen-{i}", post_id=f"p{i}")
                   for i in range(7)]
        sanitizer.observe_batch(cluster)
        verdicts = [sanitizer.screen(r) for r in cluster]
        assert all(v is not None and v.reason == "poison_cluster"
                   for v in verdicts)

    def test_free_text_duplicates_are_not_flood_screened(self):
        """Body-only channels legitimately repeat; only structured
        submissions feed the flood/cluster keys."""
        sanitizer = Sanitizer()
        repeats = [_report(body="got this scam text today", forum=Forum.REDDIT,
                           author="u/prolific", post_id=f"p{i}")
                   for i in range(20)]
        sanitizer.observe_batch(repeats)
        assert all(sanitizer.screen(r) is None for r in repeats)

    def test_counters_latch_without_prescan(self):
        """Serve-style screening (no batch pre-scan): the cumulative
        counters alone must catch a flood once it crosses the
        threshold."""
        sanitizer = Sanitizer(stage="serve")
        verdicts = [sanitizer.screen(
            _report(structured={"text": "same scam text"}, author="drip-bot",
                    post_id=f"p{i}"))
            for i in range(SanitizerLimits().flood_threshold + 2)]
        assert verdicts[0] is None
        flagged = [v for v in verdicts if v is not None]
        # The cross-author cluster threshold (6) trips first, then the
        # same-author flood threshold (8) — either way the drip stops.
        assert flagged
        assert {v.reason for v in flagged} <= {"reporter_flood",
                                               "poison_cluster"}
        assert "reporter_flood" in {v.reason for v in flagged}
        assert all(v.stage == "serve" for v in flagged)

    def test_state_roundtrip(self):
        sanitizer = Sanitizer()
        for i in range(3):
            sanitizer.screen(_report(structured={"text": "repeat me"},
                                     author="bot", post_id=f"p{i}"))
        clone = Sanitizer()
        clone.restore_state(sanitizer.state_dict())
        assert clone.state_dict() == sanitizer.state_dict()
        assert clone.screened == sanitizer.screened

    def test_stamp_epoch(self):
        record = QuarantineRecord(forum=Forum.SMISHTANK, reporter="r",
                                  reason="oversize_body")
        stamped = stamp_epoch([record], 3)
        assert stamped[0].epoch == 3
        assert record.epoch is None  # originals untouched


# -- the CorruptPayload fault rule --------------------------------------------


class TestCorruptPayload:
    SCENARIO = ScenarioConfig(seed=5, n_campaigns=6)

    def _corrupted_run(self):
        world = build_world(self.SCENARIO)
        plan = FaultPlan(seed=5, rules=(
            CorruptPayload(service=Forum.REDDIT.value, rate=0.5),))
        return world, run_pipeline(world, fault_plan=plan,
                                   execution=SEQUENTIAL)

    def test_corruption_is_deterministic_and_charged(self):
        world_a, run_a = self._corrupted_run()
        world_b, run_b = self._corrupted_run()
        assert fingerprint_run(run_a) == fingerprint_run(run_b)
        # The call succeeded and the meter charged — corruption is
        # silent, exactly like a real bad read.
        assert world_a.reddit.meter.snapshot() == \
            world_b.reddit.meter.snapshot()
        assert world_a.reddit.meter.snapshot()["used"] > 0

    def test_collector_receives_mangled_copies(self):
        world, run = self._corrupted_run()
        mangled = [r for r in run.collection.reports
                   if r.forum is Forum.REDDIT and "�" in r.body]
        assert mangled, "rate=0.5 corrupted no Reddit post"
        # ... but the world's own posts were never touched.
        assert not any("�" in post.body
                       for post in world.reddit.all_posts())

    def test_corruption_never_crashes_curation(self):
        _, run = self._corrupted_run()
        stats = run.curation_stats
        assert (stats.reports_curated + stats.quarantined
                + stats.reports_dropped == stats.reports_in)


# -- serve-path quarantine ----------------------------------------------------


def test_serve_hostile_smoke_quarantines_and_recovers():
    """End-to-end intake under a poison world: the sanitizer diverts at
    serve stage, a hostile burst pushes the degradation controller into
    ``degraded`` with an explicit hostile-input reason, and the service
    recovers to drain cleanly."""
    service = run_to_completion(
        scenario=ScenarioConfig(seed=7, n_campaigns=10, hostile="poison"),
        load=LoadSpec(profile="steady", requests=2000, reporters=500, seed=1),
        config=ServeConfig(queue_capacity=256, batch_size=32),
    )
    stats = service.stats()
    assert stats["quarantined"] > 0
    assert service.state.quarantined == stats["quarantined"]
    reasons = [t.reason for t in service.controller.transitions]
    assert any("hostile-input spike" in reason for reason in reasons)
    # Recovered: nothing left queued and the final mode is healthy.
    assert service.queue.depth == 0
    assert stats["mode"] == "healthy"
    # Accounting survives the serve path: every accepted report was
    # processed or timed out, and quarantines never exceed processing.
    assert stats["accepted"] == stats["processed"] + stats["timed_out"]
    assert 0 < stats["quarantined"] <= stats["processed"]


def test_serve_clean_world_quarantines_nothing():
    service = run_to_completion(
        scenario=ScenarioConfig(seed=7726, n_campaigns=8),
        load=LoadSpec(profile="steady", requests=300, reporters=60, seed=1),
        config=ServeConfig(queue_capacity=128, batch_size=16),
    )
    assert service.stats()["quarantined"] == 0
    assert not any("hostile" in t.reason
                   for t in service.controller.transitions)


# -- satellite regressions ----------------------------------------------------


class TestMalformedHostRegression:
    """`Url.apex` / `Url.effective_tld` used to let `ValidationError`
    escape for hand-constructed hosts the TLD registry cannot split —
    killing whole analysis passes on one hostile record."""

    def test_apex_falls_back_to_host(self):
        url = Url(scheme="http", host="phish..example")
        assert url.apex == "phish..example"
        assert url.effective_tld == ""

    def test_unknown_tld_host(self):
        url = Url(scheme="https", host="tracker.notatld999")
        assert url.apex == "tracker.notatld999"
        assert url.effective_tld == ""

    def test_malformed_host_paste_never_raises(self):
        paste = ("sms scam report\nsender: +447700900123\n"
                 "message: pay the fee at hxxp://phish..example[.]com "
                 "or t.co..invalid right away")
        assert try_parse_url("hxxp://phish..example[.]com") is None
        urls = extract_urls(paste)
        assert all(isinstance(u.apex, str) for u in urls)


class TestTimestampFuzz:
    """`Curator._parse_timestamp` must turn any garbage into a counted
    parse failure, never an exception (satellite: structured drop
    reasons for broken clocks)."""

    CORPUS = [
        "9999-12-31 23:59:59",
        "0001-01-01 00:00",
        "99/99/9999 99:99",
        "not-a-date-at-all",
        "timestamp: lol",
        "13/13/13 25:61",
        "0/0/0000",
        "2" * 400,
        "␀\x00\x01\x02",
        "🕐🕑🕒",
        "-1-1-1 -1:-1",
        "99999999999999999999-01-01",
        "",
    ]

    @pytest.fixture()
    def curator(self):
        vision = OpenAiVisionExtractor(derive(0, "fuzz-vision"),
                                       miss_rate=0.0)
        return Curator(vision)

    @pytest.mark.parametrize("raw", CORPUS)
    def test_garbage_never_raises(self, curator, raw):
        before = curator.stats.timestamp_parse_failures
        parsed = curator._parse_timestamp(raw, dt.date(2022, 9, 1))
        if parsed is None and raw:
            assert curator.stats.timestamp_parse_failures >= before

    def test_valid_timestamp_still_parses(self, curator):
        parsed = curator._parse_timestamp("2022-08-30 14:22",
                                          dt.date(2022, 9, 1))
        assert parsed is not None and parsed.has_date
