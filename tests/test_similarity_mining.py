"""Tests for text similarity and campaign mining."""

import pytest

from repro.analysis.campaign_mining import (
    campaign_summary_table,
    evaluate_clustering,
    infrastructure_reuse,
    mine_campaigns,
)
from repro.nlp.similarity import (
    MinHasher,
    UnionFind,
    canonicalise,
    cluster_texts,
    jaccard,
    shingles,
)


class TestCanonicalise:
    def test_urls_and_digits_slotted(self):
        a = canonicalise("Pay $100 now at https://evil-1.com/x")
        b = canonicalise("Pay $250 now at https://evil-2.net/y")
        assert a == b

    def test_whitespace_folded(self):
        assert canonicalise("a   b\n c") == "a b c"

    def test_distinct_texts_stay_distinct(self):
        assert canonicalise("your bank account") != \
            canonicalise("your parcel fee")


class TestShinglesJaccard:
    def test_identical_sets(self):
        s = shingles("hello world")
        assert jaccard(s, s) == 1.0

    def test_disjoint_sets(self):
        assert jaccard(shingles("aaaa bbbb"), shingles("zzzz yyyy")) < 0.2

    def test_template_variants_similar(self):
        a = shingles("SBI: verify your account at https://a.com/1 before "
                     "today or pay 500")
        b = shingles("SBI: verify your account at https://b.net/2 before "
                     "today or pay 900")
        assert jaccard(a, b) > 0.9

    def test_empty_both(self):
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_empty_one(self):
        assert jaccard(shingles("text"), frozenset()) == 0.0

    def test_short_text(self):
        assert shingles("ab", k=4) == frozenset({"ab"})


class TestMinHash:
    def test_signature_length(self):
        hasher = MinHasher(32)
        assert len(hasher.signature(shingles("hello there")).values) == 32

    def test_estimate_tracks_jaccard(self):
        hasher = MinHasher(128)
        a = shingles("your account has been suspended verify now please")
        b = shingles("your account has been suspended verify today please")
        estimate = hasher.signature(a).estimate_jaccard(hasher.signature(b))
        assert abs(estimate - jaccard(a, b)) < 0.2

    def test_identical_estimate_one(self):
        hasher = MinHasher(64)
        sig = hasher.signature(shingles("same text"))
        assert sig.estimate_jaccard(sig) == 1.0

    def test_mismatched_lengths_raise(self):
        a = MinHasher(16).signature(shingles("x y z"))
        b = MinHasher(32).signature(shingles("x y z"))
        with pytest.raises(ValueError):
            a.estimate_jaccard(b)

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(0)


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(2) == uf.find(0)
        assert uf.find(3) != uf.find(0)

    def test_groups(self):
        uf = UnionFind(4)
        uf.union(0, 3)
        groups = uf.groups()
        assert sorted(map(sorted, groups.values())) == [[0, 3], [1], [2]]


class TestClusterTexts:
    def test_clusters_template_variants(self):
        texts = [
            "SBI: account locked, verify at https://a.com/1 pay 100",
            "SBI: account locked, verify at https://b.com/2 pay 250",
            "DHL: parcel 999 held, fee at https://c.com/3",
            "DHL: parcel 111 held, fee at https://d.com/4",
            "completely unrelated message about lunch",
        ]
        clusters = cluster_texts(texts, threshold=0.6)
        assert sorted(clusters[0]) in ([0, 1], [2, 3])
        assert sorted(clusters[1]) in ([0, 1], [2, 3])
        assert [4] in clusters

    def test_bands_must_divide(self):
        with pytest.raises(ValueError):
            cluster_texts(["a", "b"], num_hashes=64, bands=7)

    def test_empty_corpus(self):
        assert cluster_texts([]) == []


class TestCampaignMining:
    @pytest.fixture(scope="class")
    def mined(self, pipeline_run):
        return mine_campaigns(pipeline_run.dataset, threshold=0.65)

    def test_finds_campaign_clusters(self, mined):
        assert len(mined) > 10
        assert all(c.size >= 2 for c in mined)

    def test_clusters_are_homogeneous(self, world, pipeline_run, mined):
        quality = evaluate_clustering(world, pipeline_run.dataset, mined)
        # Near-duplicate text recovers operation signatures cleanly; the
        # exact campaign id is a strictly harder target (same-template
        # campaigns merge) and only a lower bar applies.
        assert quality.signature_homogeneity > 0.75
        assert quality.campaign_homogeneity > 0.4
        assert quality.clustered_records > 100

    def test_campaign_footprint_fields(self, mined):
        largest = max(mined, key=lambda c: c.size)
        assert largest.exemplar()
        if largest.first_seen and largest.last_seen:
            assert largest.first_seen <= largest.last_seen

    def test_summary_table(self, mined):
        table = campaign_summary_table(mined)
        assert len(table) > 0

    def test_infrastructure_reuse_shape(self, mined):
        reuse = infrastructure_reuse(mined)
        for domain, clusters in reuse.items():
            assert len(clusters) > 1
