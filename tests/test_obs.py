"""Tests for the observability layer (``repro.obs``)."""

import json

import pytest

from repro.core.collection import TwitterCollector
from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.errors import RateLimitExceeded
from repro.forums.base_meter import ForumMeter
from repro.obs import (
    NULL_SPAN,
    NULL_TELEMETRY,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    Telemetry,
    Tracer,
)
from repro.obs import trace as trace_mod
from repro.services.base import ServiceMeter, SimClock, wait_and_charge
from repro.types import Forum
from repro.world.scenario import ScenarioConfig, build_world

FORUM_SPANS = {f"collect/{forum.value}" for forum in Forum}
SERVICE_SPANS = {
    "enrich/hlr", "enrich/whois", "enrich/crtsh", "enrich/spamhaus-pdns",
    "enrich/ipinfo", "enrich/virustotal", "enrich/gsb", "enrich/openai",
}


@pytest.fixture(scope="module")
def obs_run():
    """A small world run with observability enabled."""
    world = build_world(ScenarioConfig(seed=11, n_campaigns=12))
    telemetry = Telemetry.create(clock=world.clock)
    return run_pipeline(world, telemetry=telemetry)


class TestSpanNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.finished and inner.finished

    def test_wall_and_sim_durations(self):
        clock = SimClock()
        ticks = iter([1.0, 2.5])
        tracer = Tracer(clock=clock, time_source=lambda: next(ticks))
        with tracer.span("stage"):
            clock.advance(30.0)
        (span,) = tracer.find("stage")
        assert span.wall_seconds == pytest.approx(1.5)
        assert span.sim_seconds == pytest.approx(30.0)

    def test_exception_recorded_and_span_closed(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (span,) = tracer.find("boom")
        assert span.finished
        assert "RuntimeError" in span.attributes["error"]

    def test_manual_start_end_siblings(self):
        tracer = Tracer()
        root = tracer.start("root")
        a = tracer.start("a")
        tracer.end(a)
        b = tracer.start("b")
        tracer.end(b)
        tracer.end(root)
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_progress_sink_lines(self):
        lines = []
        tracer = Tracer(sink=lines.append)
        with tracer.span("collect"):
            pass
        assert any(line.startswith("▶ collect") for line in lines)
        assert any(line.startswith("✓ collect") for line in lines)

    def test_attributes_set_and_exported(self):
        tracer = Tracer()
        with tracer.span("stage", forum="Twitter") as span:
            span.set(posts=3)
        exported = tracer.to_dicts()[0]
        assert exported["attributes"] == {"forum": "Twitter", "posts": 3}


class TestMetrics:
    def test_counter_math(self):
        registry = MetricsRegistry()
        registry.counter("requests", service="hlr").inc()
        registry.counter("requests", service="hlr").inc(4)
        assert registry.value("requests", service="hlr") == 5
        assert registry.value("requests", service="whois") == 0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_labels_split_instruments(self):
        registry = MetricsRegistry()
        registry.counter("n", forum="a").inc()
        registry.counter("n", forum="b").inc(2)
        values = {tuple(c.labels.items()): c.value
                  for c in registry.counters()}
        assert values == {(("forum", "a"),): 1, (("forum", "b"),): 2}

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (2.0, 4.0, 9.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.min == 2.0
        assert histogram.max == 9.0
        assert histogram.mean == 5.0

    def test_null_metrics_noop(self):
        metrics = NullMetrics()
        metrics.counter("x", service="s").inc(10)
        metrics.histogram("y").observe(1.0)
        assert metrics.to_dict() == {"counters": [], "histograms": []}


class TestNullTracer:
    def test_shared_singleton_handle(self):
        tracer = NullTracer()
        assert tracer.span("a") is NULL_SPAN
        assert tracer.start("b") is NULL_SPAN
        with tracer.span("c") as span:
            assert span.set(x=1) is span

    def test_pipeline_allocates_no_spans_when_disabled(self, monkeypatch):
        # Any Span construction while telemetry is off is a bug: make
        # instantiation explode, then run the full pipeline without
        # telemetry.
        def _boom(*args, **kwargs):
            raise AssertionError("Span allocated with tracing disabled")

        monkeypatch.setattr(trace_mod, "Span", _boom)
        world = build_world(ScenarioConfig(seed=3, n_campaigns=4))
        run = run_pipeline(world)
        assert run.telemetry is NULL_TELEMETRY
        assert len(NULL_TELEMETRY.tracer.spans) == 0
        assert run.dataset is not None


class TestMeterSnapshots:
    def test_service_meter_snapshot_keys(self):
        clock = SimClock()
        meter = ServiceMeter(service="t", clock=clock, rate=10, burst=2,
                             quota=5)
        meter.charge()
        snapshot = meter.snapshot()
        assert snapshot["used"] == 1
        assert snapshot["remaining"] == 4
        assert snapshot["throttle_events"] == 0
        assert snapshot["last_charge_at"] == clock.now
        assert snapshot["backoff_seconds"] == 0.0

    def test_throttle_and_backoff_accounted(self):
        clock = SimClock()
        meter = ServiceMeter(service="t", clock=clock, rate=10, burst=1)
        wait_and_charge(meter)
        wait_and_charge(meter)  # second charge must wait for a refill
        snapshot = meter.snapshot()
        assert snapshot["throttle_events"] >= 1
        assert snapshot["backoff_seconds"] > 0

    def test_observer_sees_events(self):
        events = []
        clock = SimClock()
        meter = ServiceMeter(service="svc", clock=clock, rate=10, burst=1,
                             quota=2)
        meter.observer = lambda service, event, value: events.append(
            (service, event)
        )
        wait_and_charge(meter)
        wait_and_charge(meter)
        with pytest.raises(Exception):
            meter.charge()
        kinds = {event for _, event in events}
        assert {"request", "throttle", "backoff", "quota"} <= kinds
        assert all(service == "svc" for service, _ in events)

    def test_forum_meter_snapshot(self):
        clock = SimClock(start=42.0)
        meter = ForumMeter(service="tw", cap=2, clock=clock)
        meter.charge()
        assert meter.snapshot() == {
            "used": 1, "remaining": 1, "throttle_events": 0,
            "last_charge_at": 42.0,
        }
        meter.charge()
        with pytest.raises(Exception):
            meter.charge()
        assert meter.snapshot()["throttle_events"] == 1


class TestCollectionLimitations:
    def _capped_twitter(self, cap):
        import datetime as dt
        from repro.forums.base import Post
        from repro.forums.twitter import TwitterService

        service = TwitterService(meter=ForumMeter(service="tw", cap=cap))
        service.page_size = 5
        base = dt.datetime(2020, 1, 1)
        for i in range(40):
            service.add_post(Post(
                post_id=f"t{i}", forum=Forum.TWITTER, author="u",
                created_at=base + dt.timedelta(days=i * 10),
                body="smishing report",
            ))
        return service

    def test_quota_becomes_structured_limitation(self):
        service = self._capped_twitter(cap=3)
        result = TwitterCollector(service, PipelineConfig()).collect()
        assert result.limitations
        limitation = result.limitations[0]
        assert limitation.forum is Forum.TWITTER
        assert limitation.kind == "quota"
        assert limitation.service == "tw"
        assert limitation.posts_forgone > 0
        assert limitation.simulated_at is not None
        # Legacy string accounting still present for old consumers.
        assert len(result.api_errors) == len(result.limitations)

    def test_no_limitations_on_clean_run(self):
        service = self._capped_twitter(cap=500)
        result = TwitterCollector(service, PipelineConfig()).collect()
        assert result.limitations == []


class TestJsonRoundTrip:
    def test_round_trip(self, tmp_path):
        clock = SimClock()
        telemetry = Telemetry.create(clock=clock)
        with telemetry.tracer.span("pipeline"):
            clock.advance(5.0)
            telemetry.metrics.counter("service.requests",
                                      service="hlr").inc(3)
        meter = ServiceMeter(service="hlr", clock=clock)
        meter.charge()
        telemetry.capture_meter(meter)

        path = tmp_path / "trace.json"
        telemetry.write_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["format"] >= 1
        (span,) = loaded["spans"]
        assert span["name"] == "pipeline"
        assert span["sim_seconds"] == pytest.approx(5.0)
        (counter,) = loaded["metrics"]["counters"]
        assert counter == {"name": "service.requests",
                           "labels": {"service": "hlr"}, "value": 3.0}
        assert loaded["meters"]["hlr"]["used"] == 1


class TestPipelineTelemetry:
    def test_one_span_per_forum(self, obs_run):
        names = obs_run.telemetry.tracer.names()
        for name in FORUM_SPANS:
            assert names.count(name) == 1, name

    def test_one_span_per_enrichment_service(self, obs_run):
        names = obs_run.telemetry.tracer.names()
        for name in SERVICE_SPANS:
            assert names.count(name) == 1, name

    def test_stage_spans_nest_under_pipeline(self, obs_run):
        tracer = obs_run.telemetry.tracer
        (root,) = tracer.find("pipeline")
        (collect,) = tracer.find("collect")
        (curate,) = tracer.find("curate")
        (enrich,) = tracer.find("enrich")
        assert collect.parent_id == root.span_id
        assert curate.parent_id == root.span_id
        assert enrich.parent_id == root.span_id
        (twitter,) = tracer.find("collect/Twitter")
        assert twitter.parent_id == collect.span_id

    def test_meter_snapshots_captured(self, obs_run):
        snapshots = obs_run.telemetry.meter_snapshots
        for service in ("hlr", "whois", "crtsh", "spamhaus-pdns", "ipinfo",
                        "virustotal", "gsb", "openai"):
            assert service in snapshots
            assert snapshots[service]["used"] > 0

    def test_per_service_counters_recorded(self, obs_run):
        metrics = obs_run.telemetry.metrics
        assert metrics.value("service.requests", service="openai") > 0
        assert metrics.value("service.requests", service="hlr") > 0
        assert metrics.value("curation.records_out") == len(obs_run.dataset)

    def test_observers_detached_after_run(self, obs_run):
        assert obs_run.world.hlr.meter.observer is None
        for forum_service in obs_run.world.forums.values():
            assert forum_service.meter.observer is None

    def test_summary_renders(self, obs_run):
        summary = obs_run.telemetry.summary()
        assert "Pipeline stages" in summary
        assert "Service telemetry" in summary
        assert "openai" in summary
