"""The profiling determinism guard: observation never touches results.

``--profile`` (cProfile + tracemalloc) and ``--history-dir`` are pure
observers — they read the interpreter and the finished telemetry, never
the RNG, the simulated clock, or a meter. These tests pin that as a
byte-level guarantee: the full run fingerprint (dataset rows, gaps,
limitations, rendered report, meter snapshots, clock reading) is
identical with profiling on vs off, across worker counts, and writing a
history record changes nothing either.
"""

import itertools

import pytest

from repro.core.pipeline import run_pipeline
from repro.exec import ExecutionPolicy
from repro.obs import RunHistory, Telemetry, build_run_record
from repro.world.scenario import ScenarioConfig, build_world

from .fingerprints import profiled_fingerprint

SEED = 13
CAMPAIGNS = 6


def _run_factory(workers):
    def factory():
        world = build_world(ScenarioConfig(seed=SEED,
                                           n_campaigns=CAMPAIGNS))
        telemetry = Telemetry.create(clock=world.clock)
        return run_pipeline(world, telemetry=telemetry,
                            execution=ExecutionPolicy(workers=workers))

    return factory


class TestProfilingNeverLeaksIntoFingerprints:
    @pytest.fixture(scope="class")
    def fingerprints(self):
        """One fingerprint per (workers, profile) cell of the matrix."""
        return {
            (workers, profile): profiled_fingerprint(
                _run_factory(workers), profile=profile)
            for workers, profile in itertools.product((1, 4),
                                                      (False, True))
        }

    def test_profile_on_equals_profile_off_serial(self, fingerprints):
        assert fingerprints[(1, True)] == fingerprints[(1, False)]

    def test_profile_on_equals_profile_off_parallel(self, fingerprints):
        assert fingerprints[(4, True)] == fingerprints[(4, False)]

    def test_workers_equivalence_holds_under_profiling(self, fingerprints):
        assert fingerprints[(4, True)] == fingerprints[(1, False)]

    def test_profiled_run_actually_profiled(self):
        """The guard is vacuous if the profiler never engaged."""
        from repro.obs import FunctionProfiler

        profiler = FunctionProfiler()
        with profiler:
            run = _run_factory(1)()
        run.telemetry.capture_function_profile(profiler.snapshot())
        snapshot = run.telemetry.function_snapshot
        assert snapshot["top_functions"], "profiler captured nothing"
        assert snapshot["memory_peak_bytes"] > 0


class TestHistoryNeverLeaksIntoFingerprints:
    def test_history_record_leaves_results_identical(self, tmp_path):
        baseline = profiled_fingerprint(_run_factory(1), profile=False)

        run = _run_factory(1)()
        record = build_run_record(
            command="stats",
            config={"seed": SEED, "campaigns": CAMPAIGNS, "workers": 1},
            telemetry=run.telemetry,
            counts={"records": len(run.dataset)},
        )
        RunHistory(tmp_path).append(record)
        from .fingerprints import fingerprint_run

        assert fingerprint_run(run) == baseline
        # The record made it to disk — the observation happened.
        assert RunHistory(tmp_path).latest()["counts"]["records"] \
            == len(run.dataset)
