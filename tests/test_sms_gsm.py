"""Tests for GSM 03.38 encoding and segmentation."""

import pytest

from repro.sms.gsm import (
    GSM7,
    UCS2,
    choose_encoding,
    is_gsm_char,
    is_gsm_text,
    message_cost_units,
    pack_septets,
    segment_count,
    septet_length,
    split_segments,
    unpack_septets,
)


class TestAlphabet:
    def test_basic_ascii(self):
        assert is_gsm_text("Hello, your account is blocked!")

    def test_extension_chars(self):
        assert is_gsm_char("€")
        assert is_gsm_char("[")

    def test_non_gsm(self):
        assert not is_gsm_char("✓")
        assert not is_gsm_text("こんにちは")

    def test_septet_length_basic(self):
        assert septet_length("abc") == 3

    def test_septet_length_extension_doubles(self):
        assert septet_length("a€b") == 4

    def test_septet_length_rejects_non_gsm(self):
        with pytest.raises(ValueError):
            septet_length("日本")


class TestEncodingChoice:
    def test_gsm_preferred(self):
        assert choose_encoding("plain text") is GSM7

    def test_ucs2_for_unicode(self):
        assert choose_encoding("खाता") is UCS2

    def test_cost_units(self):
        segments, encoding = message_cost_units("x" * 200)
        assert segments == 2
        assert encoding == "gsm7"


class TestSegmentation:
    def test_empty_is_one_segment(self):
        assert segment_count("") == 1

    def test_160_fits_single(self):
        assert segment_count("a" * 160) == 1

    def test_161_needs_two(self):
        assert segment_count("a" * 161) == 2

    def test_concat_capacity_153(self):
        assert segment_count("a" * 306) == 2
        assert segment_count("a" * 307) == 3

    def test_ucs2_70_single(self):
        text = "ю" * 70
        assert segment_count(text) == 1
        assert segment_count(text + "ю") == 2

    def test_split_preserves_text(self):
        text = "word " * 100
        assert "".join(split_segments(text)) == text

    def test_split_segment_sizes_legal(self):
        for segment in split_segments("a" * 500):
            assert septet_length(segment) <= 153

    def test_split_never_splits_extension_char(self):
        text = ("a" * 152) + "€" + "b" * 100
        segments = split_segments(text)
        assert "".join(segments) == text
        for segment in segments:
            # Each segment independently encodable.
            assert septet_length(segment) <= 153

    def test_single_segment_passthrough(self):
        assert split_segments("short") == ["short"]


class TestSeptetPacking:
    def test_round_trip_ascii(self):
        text = "hello world"
        packed = pack_septets(text)
        assert unpack_septets(packed, septet_length(text)) == text

    def test_round_trip_with_extension(self):
        text = "pay €50 now [urgent]"
        packed = pack_septets(text)
        assert unpack_septets(packed, septet_length(text)) == text

    def test_packing_saves_bytes(self):
        text = "a" * 160
        assert len(pack_septets(text)) == 140

    def test_packing_rejects_non_gsm(self):
        with pytest.raises(ValueError):
            pack_septets("日本")

    def test_empty(self):
        assert pack_septets("") == b""
        assert unpack_septets(b"", 0) == ""
