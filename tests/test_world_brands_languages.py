"""Tests for the brand and language registries."""

import pytest

from repro.errors import NotFound
from repro.types import ScamType
from repro.world.brands import BrandRegistry, default_brands, leetify
from repro.world.languages import default_languages


@pytest.fixture(scope="module")
def brands():
    return default_brands()


@pytest.fixture(scope="module")
def languages():
    return default_languages()


class TestBrandRegistry:
    def test_table12_brands_present(self, brands):
        for name in ("State Bank of India", "PayTM", "HDFC Bank",
                     "Santander", "Amazon", "Internal Revenue Service",
                     "Rabobank", "BBVA", "Netflix", "CaixaBank"):
            assert brands.get(name)

    def test_alias_resolution(self, brands):
        assert brands.resolve_alias("SBI").name == "State Bank of India"
        assert brands.resolve_alias("irs").name == "Internal Revenue Service"

    def test_fixed_leet_alias(self, brands):
        assert brands.resolve_alias("N3tfl!x").name == "Netflix"

    def test_unknown_alias_none(self, brands):
        assert brands.resolve_alias("Bank of Atlantis") is None

    def test_unknown_brand_raises(self, brands):
        with pytest.raises(NotFound):
            brands.get("Nope Inc")

    def test_categories_populated(self, brands):
        for category in (ScamType.BANKING, ScamType.DELIVERY,
                         ScamType.GOVERNMENT, ScamType.TELECOM,
                         ScamType.OTHERS):
            assert brands.in_category(category)

    def test_sbi_heaviest_banking_brand(self, brands):
        banking = brands.in_category(ScamType.BANKING)
        heaviest = max(banking, key=lambda b: b.weight)
        assert heaviest.name == "State Bank of India"

    def test_sampler_for_category(self, brands, rng):
        sampler = brands.sampler_for(ScamType.DELIVERY)
        name = sampler.sample(rng)
        assert brands.get(name).category is ScamType.DELIVERY

    def test_alias_forms_lowercase(self, brands):
        forms = brands.all_alias_forms()
        assert all(key == key.lower() for key in forms)


class TestLeetify:
    def test_substitutes_lookalikes(self, rng):
        result = leetify("Netflix", rng)
        assert result != "Netflix"
        assert len(result) == len("Netflix")

    def test_deterministic_under_seed(self):
        import random
        assert leetify("Amazon", random.Random(1)) == leetify(
            "Amazon", random.Random(1)
        )

    def test_max_subs_respected(self, rng):
        result = leetify("aaaaaa", rng, max_subs=2)
        assert sum(1 for c in result if c != "a") <= 2


class TestLanguageRegistry:
    def test_table11_top_codes_present(self, languages):
        for code in ("en", "es", "nl", "fr", "de", "it", "id", "pt", "ja",
                     "hi"):
            assert code in languages

    def test_most_spoken_ranking(self, languages):
        top = languages.most_spoken(3)
        assert [l.name for l in top] == ["English", "Mandarin Chinese",
                                         "Hindi"]

    def test_language_count_supports_66(self, languages):
        # The paper detects 66 languages; the registry must cover a
        # comparable space (≥45 with real marker banks).
        assert len(languages) >= 45

    def test_markers_nonempty(self, languages):
        for language in languages:
            assert language.markers

    def test_marker_lexicon_shape(self, languages):
        lexicon = languages.marker_lexicon()
        assert lexicon["en"] == languages.get("en").markers

    def test_unknown_code_raises(self, languages):
        with pytest.raises(NotFound):
            languages.get("xx")

    def test_non_latin_scripts_flagged(self, languages):
        assert languages.get("ja").script != "latin"
        assert languages.get("hi").script == "devanagari"
