#!/usr/bin/env python3
"""Produce the pseudo-anonymised public dataset (paper Appendix A/C).

Runs the pipeline, evaluates the annotations against ground truth the way
§3.4 evaluates GPT-4o against human annotators, scrubs PII (raw numbers,
URLs, e-mails, names), validates the release, and writes it as JSONL.

Run:  python examples/dataset_release.py [output.jsonl]
"""

import sys
from collections import Counter

from repro.core.anonymize import build_release, save_release, validate_release
from repro.core.evaluation import evaluate_annotation
from repro.core.pipeline import run_pipeline
from repro.utils.stats import interpret_kappa
from repro.world.scenario import ScenarioConfig, build_world


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "smishing_release.jsonl"

    world = build_world(ScenarioConfig(seed=2025, n_campaigns=120))
    run = run_pipeline(world)

    print("Validating annotations against the ground-truth sample (§3.4)...")
    report = evaluate_annotation(world, run.dataset, sample_size=150)
    print(f"  IRR   : brands k={report.irr.brands:.2f}, "
          f"scam k={report.irr.scam_types:.2f}, "
          f"lures k={report.irr.lures:.2f}")
    print(f"  model : brands k={report.model_vs_consensus.brands:.2f} "
          f"({interpret_kappa(report.model_vs_consensus.brands)}), "
          f"scam k={report.model_vs_consensus.scam_types:.2f} "
          f"({interpret_kappa(report.model_vs_consensus.scam_types)}), "
          f"lures k={report.model_vs_consensus.lures:.2f} "
          f"({interpret_kappa(report.model_vs_consensus.lures)})")

    print("\nBuilding the pseudo-anonymised release (Appendix C fields)...")
    rows = build_release(run.enriched)
    offenders = validate_release(rows)
    print(f"  rows: {len(rows)}; PII sweep violations: {len(offenders)}")

    written = save_release(rows, output)
    print(f"  wrote {written} rows to {output}")

    categories = Counter(row.scam_category for row in rows
                         if row.scam_category)
    print("\nRelease composition by scam category:")
    for category, count in categories.most_common():
        print(f"  {category:<14} {count:>5} ({100.0 * count / written:.1f}%)")

    languages = Counter(row.language for row in rows if row.language)
    print(f"\nLanguages represented: {len(languages)} "
          f"(top: {', '.join(code for code, _ in languages.most_common(5))})")
    operators = Counter(row.sender_original_operator for row in rows
                        if row.sender_original_operator)
    print(f"Original MNOs represented: {len(operators)} "
          f"(top: {', '.join(n for n, _ in operators.most_common(3))})")


if __name__ == "__main__":
    main()
