#!/usr/bin/env python3
"""Quickstart: build a world, run the pipeline, print headline findings.

This is the 60-second tour of the library:

1. :func:`repro.world.scenario.build_world` stands up a synthetic smishing
   ecosystem — scammer campaigns, mobile networks, web infrastructure, and
   five forums full of user reports.
2. :func:`repro.core.pipeline.run_pipeline` is the paper's measurement
   pipeline: keyword collection, vision extraction from screenshots, and
   the full enrichment battery (HLR, WHOIS, crt.sh, passive DNS,
   VirusTotal, GSB, GPT-4o-style annotation).
3. The analysis builders regenerate the paper's tables.

Run:  python examples/quickstart.py
"""

from repro.analysis.overview import build_table1, collection_funnel
from repro.analysis.sender import build_table4, sender_kind_split
from repro.analysis.strategies import build_table10, build_table12
from repro.core.pipeline import run_pipeline
from repro.world.scenario import ScenarioConfig, build_world


def main() -> None:
    print("Building the synthetic smishing world ...")
    world = build_world(ScenarioConfig(seed=7726, n_campaigns=100))
    print(f"  {len(world.campaigns)} campaigns sent "
          f"{len(world.events)} smishing messages")
    print(f"  {sum(len(f) for f in world.forums.values())} forum posts "
          f"across {len(world.forums)} forums")

    print("\nRunning the measurement pipeline (collect, curate, enrich) ...")
    run = run_pipeline(world)
    funnel = collection_funnel(run.collection, run.dataset)
    for stage, value in funnel.items():
        print(f"  {stage:>20}: {value:,}")

    enriched = run.enriched
    print()
    print(build_table1(run.collection, run.dataset).to_text())

    split = sender_kind_split(enriched)
    print(f"\nSender IDs (unique): {split.phone_numbers} phone numbers, "
          f"{split.alphanumeric} alphanumeric, {split.emails} emails")

    print()
    print(build_table4(enriched).to_text())
    print()
    print(build_table10(enriched).to_text())
    print()
    print(build_table12(enriched).to_text())


if __name__ == "__main__":
    main()
