#!/usr/bin/env python3
"""Infrastructure audit: who enables smishing, and where to intervene.

Walks the paper's RQ1 battery (§4) over one measured dataset and then
turns it into the §7.2 stakeholder view: the registrars, certificate
authorities, shortener services, hosting providers and mobile operators
whose services smishing campaigns depend on — ranked by how much abuse
each one carries, i.e. where takedown pressure buys the most.

Run:  python examples/infrastructure_audit.py
"""

from repro.analysis.detection import gsb_comparison, vt_thresholds
from repro.analysis.domains import free_hosting_counts, registrar_usage
from repro.analysis.hosting import (
    as_usage,
    bulletproof_hosting_hits,
    hosting_overview,
)
from repro.analysis.sender import build_table3, build_table4
from repro.analysis.shorteners import shortener_usage, whatsapp_link_count
from repro.analysis.tls import ca_usage
from repro.core.pipeline import run_pipeline
from repro.types import GsbStatus
from repro.world.scenario import ScenarioConfig, build_world


def pct(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "n/a"


def main() -> None:
    world = build_world(ScenarioConfig(seed=404, n_campaigns=160))
    run = run_pipeline(world)
    enriched = run.enriched

    print("=" * 64)
    print("SMISHING INFRASTRUCTURE AUDIT")
    print("=" * 64)

    # -- mobile network side -------------------------------------------------
    print("\n[1] Sending side: mobile networks")
    print(build_table3(enriched).to_text())
    print()
    print(build_table4(enriched).to_text())

    # -- web side ------------------------------------------------------------
    print("\n[2] Web side: registration and hosting chokepoints")
    registrars, _ = registrar_usage(enriched)
    total_domains = sum(registrars.values())
    print(f"  registered smishing domains: {total_domains}")
    for name, count in registrars.most_common(5):
        print(f"    registrar {name:<22} {count:>4} ({pct(count, total_domains)})")

    free = free_hosting_counts(enriched)
    if free:
        print(f"  free website-builder deployments: {sum(free.values())}")
        for suffix, count in free.most_common():
            print(f"    {suffix:<18} {count}")

    certs, domains = ca_usage(enriched)
    print(f"  TLS certificates observed: {sum(certs.values()):,} across "
          f"{sum(domains.values()):,} domain-CA pairs")
    for issuer, count in certs.most_common(4):
        print(f"    CA {issuer:<22} {count:>6,} certs / "
              f"{domains[issuer]:>4} domains")

    overview = hosting_overview(enriched)
    print(f"  passive-DNS resolving domains: {overview.resolving_domains} "
          f"(Cloudflare-fronted: {pct(overview.cloudflare_domains, overview.resolving_domains)})")
    ip_counts, _, _ = as_usage(enriched)
    for org, count in ip_counts.most_common(5):
        print(f"    AS {org:<24} {count:>3} IPs")
    bph = bulletproof_hosting_hits(enriched, world.as_registry)
    if bph:
        print("  bulletproof hosting observed:")
        for org, count in bph.most_common():
            print(f"    {org:<24} {count} IPs  <-- law-enforcement target")

    # -- evasion layer ------------------------------------------------------------
    print("\n[3] Evasion layer: shorteners and conversation pivots")
    totals, _ = shortener_usage(enriched)
    short_total = sum(totals.values())
    for name, count in totals.most_common(5):
        print(f"    {name:<14} {count:>4} ({pct(count, short_total)})")
    print(f"    wa.me conversation links: {whatsapp_link_count(enriched)}")

    # -- detection gap --------------------------------------------------------------
    print("\n[4] Detection gap (why user reports matter)")
    vt = vt_thresholds(enriched)
    print(f"    URLs no AV flags at all: {pct(vt.undetected, vt.total)}")
    print(f"    URLs >=5 vendors flag:   "
          f"{pct(vt.malicious_at_least[5], vt.total)}")
    gsb = gsb_comparison(enriched)
    print(f"    GSB API unsafe:          {pct(gsb.api_unsafe, gsb.total)}")
    not_queried = gsb.transparency.get(GsbStatus.NOT_QUERIED, 0)
    print(f"    GSB report unqueryable:  {pct(not_queried, gsb.total)}")

    print("\nRecommendations (§7.2): prioritise the top registrar, the top "
          "CA, and the top shortener above; their abuse shares dwarf the "
          "long tail.")


if __name__ == "__main__":
    main()
