#!/usr/bin/env python3
"""Campaign forensics: from a pile of reports to attributed operations.

A measurement dataset is individual reports; an investigator wants
*operations*: which reports belong together, what infrastructure each
operation runs, how long it lives, and what sending it costs. This
example chains the library's mining layer over one measured dataset:

1. near-duplicate clustering + brand splitting recovers campaigns,
2. each mined campaign's infrastructure footprint is summarised,
3. the clustering is scored against the simulation's ground truth,
4. the delivery-economics model prices the largest operation.

Run:  python examples/campaign_forensics.py
"""

from collections import Counter

from repro.analysis.campaign_mining import (
    campaign_summary_table,
    evaluate_clustering,
    infrastructure_reuse,
    mine_campaigns,
)
from repro.core.pipeline import run_pipeline
from repro.sms.delivery import DeliveryEngine
from repro.world.scenario import ScenarioConfig, build_world


def main() -> None:
    world = build_world(ScenarioConfig(seed=1337, n_campaigns=140))
    run = run_pipeline(world)
    dataset = run.annotated_dataset

    print(f"Mining {len(dataset)} curated records into campaigns ...")
    mined = mine_campaigns(dataset, threshold=0.65)
    print(campaign_summary_table(mined, top=12).to_text())

    quality = evaluate_clustering(world, dataset, mined)
    print(f"\nClustering vs ground truth: "
          f"signature homogeneity {quality.signature_homogeneity:.0%}, "
          f"campaign homogeneity {quality.campaign_homogeneity:.0%}, "
          f"coverage {quality.coverage:.0%} "
          f"over {quality.clustered_records} records")

    shared = infrastructure_reuse(mined)
    if shared:
        print(f"\nDomains serving multiple operations (shared kit hosting): "
              f"{len(shared)}")
        for domain, clusters in list(shared.items())[:5]:
            print(f"  {domain} -> clusters {clusters}")

    # Price the biggest operation with the delivery-economics model,
    # using the ground-truth events of its dominant true campaign.
    largest = max(mined, key=lambda c: c.size)
    true_ids = Counter(
        world.event(r.truth_event_id).campaign_id
        for r in largest.records
        if r.truth_event_id and world.event(r.truth_event_id)
    )
    if true_ids:
        campaign_id = true_ids.most_common(1)[0][0]
        events = [e for e in world.events if e.campaign_id == campaign_id]
        stats = DeliveryEngine().deliver(events)
        print(f"\nLargest mined operation maps to campaign {campaign_id}:")
        print(f"  ground-truth sends : {len(events)}")
        print(f"  delivered          : {stats.delivered} "
              f"({stats.blocked_messages} filtered)")
        print(f"  segments on wire   : {stats.total_segments}")
        print(f"  estimated send cost: {stats.total_cost:.2f} units "
              f"({stats.cost_per_delivered():.3f}/delivered)")


if __name__ == "__main__":
    main()
