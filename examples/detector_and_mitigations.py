#!/usr/bin/env python3
"""Beyond measurement: detection models and mitigation what-ifs (§7.2).

The paper's closing recommendation is that its labelled dataset should
power (a) multi-class detection models replacing decade-old binary
spam/ham classifiers, and (b) policy changes at registrars, shorteners,
CAs and reporting channels. This example does both on one simulated
dataset:

1. trains a multinomial Naive Bayes scam-type classifier on the released
   labels and compares it with the early literature's rule-based filter,
2. replays the dataset under four §7.2 countermeasures and reports how
   much smishing each would have intercepted.

Run:  python examples/detector_and_mitigations.py
"""

from repro.core.mitigation import ReportingChannelModel, run_all_mitigations
from repro.core.pipeline import run_pipeline
from repro.detect import (
    FeatureExtractor,
    NaiveBayesClassifier,
    RuleBasedFilter,
    evaluate_classifier,
    train_test_split,
)
from repro.types import ScamType
from repro.world.scenario import ScenarioConfig, build_world

URL_SCAMS = {ScamType.BANKING, ScamType.DELIVERY, ScamType.GOVERNMENT,
             ScamType.TELECOM, ScamType.OTHERS}


def main() -> None:
    world = build_world(ScenarioConfig(seed=9000, n_campaigns=160))
    run = run_pipeline(world)

    labelled = [
        (record, world.event(record.truth_event_id).scam_type)
        for record in run.dataset
        if record.truth_event_id and world.event(record.truth_event_id)
    ]
    train, test = train_test_split(labelled, test_fraction=0.3, seed=1)
    print(f"Training on {len(train)} records, testing on {len(test)}.")

    extractor = FeatureExtractor()
    model = NaiveBayesClassifier()
    model.fit([extractor.extract(r.text, r.sender) for r, _ in train],
              [label for _, label in train])
    predictions = model.predict_many(
        extractor.extract(r.text, r.sender) for r, _ in test
    )
    result = evaluate_classifier([label for _, label in test], predictions)
    print()
    print(result.to_table("Multi-class scam typing (Naive Bayes)").to_text())

    print("\nMost indicative features for 'banking':")
    for name, weight in model.top_features(ScamType.BANKING, 8):
        print(f"  {name:<28} {weight:.0f}")

    # Binary head-to-head against the rule filter.
    binary_truth = [label in URL_SCAMS for _, label in test]
    rules = RuleBasedFilter()
    rule_result = evaluate_classifier(
        binary_truth, [rules.predict(r.text, r.sender) for r, _ in test]
    )
    nb_binary = NaiveBayesClassifier()
    nb_binary.fit([extractor.extract(r.text, r.sender) for r, _ in train],
                  [label in URL_SCAMS for _, label in train])
    nb_result = evaluate_classifier(
        binary_truth,
        nb_binary.predict_many(extractor.extract(r.text, r.sender)
                               for r, _ in test),
    )
    print(f"\nBinary smishing detection: rules acc={rule_result.accuracy:.3f}"
          f"  vs  learned acc={nb_result.accuracy:.3f}")

    print("\nMitigation what-ifs (§7.2):")
    for outcome in run_all_mitigations(run.enriched):
        print(f"  {outcome.name:<44} {outcome.intercepted:>5}/"
              f"{outcome.eligible:<5} ({outcome.coverage:.0%})")

    print("\n7726-style reporting coverage vs user awareness:")
    model_76 = ReportingChannelModel()
    for outcome in model_76.awareness_sweep(len(run.dataset),
                                            (0.24, 0.5, 0.75, 1.0)):
        print(f"  {outcome.name:<44} ({outcome.coverage:.0%})")


if __name__ == "__main__":
    main()
