#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

This is the "make all" of the reproduction: it builds a benchmark-scale
world, runs the pipeline, and prints Tables 1 and 3-19 plus Figures 2-3
and the §3.4 evaluation, in paper order.

Run:  python examples/full_paper_report.py [--scale N]
"""

import argparse
import time

from repro.analysis.report import generate_paper_report
from repro.core.pipeline import run_pipeline
from repro.world.scenario import ScenarioConfig, build_world


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--campaigns", type=int, default=200,
                        help="number of scam campaigns to simulate")
    parser.add_argument("--seed", type=int, default=7726)
    args = parser.parse_args()

    started = time.time()
    world = build_world(ScenarioConfig(seed=args.seed,
                                       n_campaigns=args.campaigns))
    run = run_pipeline(world)
    report = generate_paper_report(run)
    elapsed = time.time() - started

    print(report.render())
    print(f"\nRegenerated {len(report.tables)} tables/figures from "
          f"{len(run.dataset)} curated records in {elapsed:.1f}s.")


if __name__ == "__main__":
    main()
