"""Bench: regenerate Table 9 (VirusTotal URL detection thresholds)."""

from repro.analysis.detection import build_table9, vt_thresholds
from conftest import show


def test_table09_virustotal(benchmark, enriched):
    table = benchmark(build_table9, enriched)
    show(table)
    data = vt_thresholds(enriched)
    total = data.total
    # Shape targets from Table 9: ~45% undetected, ~50% with >=1
    # malicious flag, a steep fall-off to >=15.
    assert 0.30 < data.undetected / total < 0.62
    assert 0.35 < data.malicious_at_least[1] / total < 0.65
    assert data.malicious_at_least[15] / total < 0.02
    assert data.suspicious_at_least[5] / total < 0.005
