"""Bench: regenerate Table 13 (lure principles by scam type)."""

from repro.analysis.strategies import (
    build_table13,
    lure_scam_matrix,
    lure_usage_counts,
)
from repro.types import LurePrinciple, ScamType
from conftest import show


def test_table13_lures(benchmark, enriched):
    table = benchmark(build_table13, enriched)
    show(table)
    matrix = lure_scam_matrix(enriched)
    # Shape: urgency applies to every scam column except Wrong Number;
    # authority marks the impersonation scams; kindness marks the
    # conversation scams; dishonesty and herd are rare overall (§5.5).
    assert matrix[LurePrinciple.TIME_URGENCY][ScamType.BANKING]
    assert not matrix[LurePrinciple.TIME_URGENCY][ScamType.WRONG_NUMBER]
    assert matrix[LurePrinciple.AUTHORITY][ScamType.BANKING]
    assert matrix[LurePrinciple.AUTHORITY][ScamType.DELIVERY]
    assert matrix[LurePrinciple.KINDNESS][ScamType.HEY_MUM_DAD]
    usage = lure_usage_counts(enriched)
    total = sum(usage.values()) or 1
    assert usage.get(LurePrinciple.DISHONESTY, 0) / total < 0.03
