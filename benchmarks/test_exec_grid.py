"""Bench: the execution engine's pool × workers × cache grid.

Runs the collect→curate→enrich pipeline on the scaled scenario across
the pool-type axis (serial / thread / process), dumps
``artifacts/exec_grid.json`` (per-cell wall time, records/sec, speedup
over the sequential uncached baseline, cache hit rate), and asserts
the engine's perf bars:

* ``--workers 4 --pool thread`` with the cache on must be ≥ 1.5× over
  the sequential uncached baseline — the cache-dedup floor (duplicate
  message texts are ~half the corpus; under the GIL the thread pool
  contributes structure, not CPU parallelism).
* ``--workers 4 --pool process`` with the cache on must be ≥ 2.5× —
  the multi-core floor, asserted only when the host actually has ≥ 4
  CPUs (``os.cpu_count()``). On smaller hosts the process pool cannot
  beat the GIL by parallelism, so the assertion falls back to the
  cache-dedup-minus-IPC floor (≥ 1.25×) and the artifact records which
  bar was applied; correctness (identical records/gaps across every
  cell) is asserted unconditionally either way.

The byte-level equivalence proof lives in
``tests/test_exec_equivalence.py``; this grid keeps the *speed* story
honest and feeds the records/sec floor that ``scripts/perf_gate.py``
pins in CI.
"""

import json
import os
import time
from pathlib import Path

from repro.core.pipeline import run_pipeline
from repro.exec import ExecutionPolicy
from repro.obs import Telemetry
from repro.world.scenario import ScenarioConfig, build_world

#: The "scaled world": heavier per-campaign volume than the unit-test
#: scenarios, so duplicate texts (the cache's target) and annotation
#: compute (the process pool's target) carry production-like weight.
GRID_CONFIG = ScenarioConfig(seed=7726, n_campaigns=240,
                             mean_campaign_volume=70.0,
                             sbi_burst_volume=150)

#: (pool, workers, cache) cells; the first is the baseline.
GRID = (
    ("serial", 1, False),
    ("serial", 1, True),
    ("thread", 4, True),
    ("process", 4, False),
    ("process", 4, True),
)

#: Multi-core floor for the process pool at 4 workers (hosts with ≥ 4 CPUs).
PROCESS_SPEEDUP_FLOOR = 2.5
#: Cache-dedup floor for the threaded cell (any host).
THREAD_SPEEDUP_FLOOR = 1.5
#: What the process pool must still clear on hosts without 4 CPUs:
#: the cache dedup win minus fork/pickle overhead.
PROCESS_FALLBACK_FLOOR = 1.25


def _cell_key(pool: str, workers: int, cache: bool) -> str:
    return f"pool={pool},workers={workers},cache={'on' if cache else 'off'}"


def test_exec_grid():
    """Run the pool grid on the scaled scenario and dump the artifact."""
    cells = {}
    for pool, workers, cache in GRID:
        world = build_world(GRID_CONFIG)
        telemetry = Telemetry.create(clock=world.clock)
        started = time.perf_counter()
        run = run_pipeline(
            world, telemetry=telemetry,
            execution=ExecutionPolicy(workers=workers, cache=cache,
                                      pool=pool),
        )
        wall = time.perf_counter() - started
        snapshot = telemetry.cache_snapshot
        records = len(run.dataset)
        cells[_cell_key(pool, workers, cache)] = {
            "pool": pool,
            "workers": workers,
            "cache": cache,
            "wall_seconds": round(wall, 3),
            "records": records,
            "records_per_sec": round(records / wall, 1) if wall else None,
            "gaps": len(run.enriched.gaps),
            "cache_hit_rate": round(snapshot.get("hit_rate", 0.0), 4),
            "cache_hits": snapshot.get("totals", {}).get("hits", 0),
        }

    baseline = cells[_cell_key("serial", 1, False)]
    threaded = cells[_cell_key("thread", 4, True)]
    processed = cells[_cell_key("process", 4, True)]
    thread_speedup = baseline["wall_seconds"] / threaded["wall_seconds"]
    process_speedup = baseline["wall_seconds"] / processed["wall_seconds"]

    cpus = os.cpu_count() or 1
    multicore = cpus >= 4
    process_floor = (PROCESS_SPEEDUP_FLOOR if multicore
                     else PROCESS_FALLBACK_FLOOR)

    out_dir = Path(os.environ.get("REPRO_BENCH_ARTIFACTS",
                                  str(Path(__file__).parent / "artifacts")))
    out_dir.mkdir(parents=True, exist_ok=True)
    artifact = {
        "config": {"seed": GRID_CONFIG.seed,
                   "n_campaigns": GRID_CONFIG.n_campaigns,
                   "mean_campaign_volume": GRID_CONFIG.mean_campaign_volume},
        "cpus": cpus,
        "cells": cells,
        "speedup_workers4_cached_vs_sequential": round(thread_speedup, 3),
        "speedup_process4_cached_vs_sequential": round(process_speedup, 3),
        "process_speedup_floor_applied": process_floor,
    }
    (out_dir / "exec_grid.json").write_text(
        json.dumps(artifact, indent=2))
    print(f"\nexec grid ({cpus} cpus): thread {thread_speedup:.2f}x, "
          f"process {process_speedup:.2f}x "
          f"(floor {process_floor:.2f}x), "
          f"{processed['records_per_sec']:,.0f} records/s")

    # All cells must agree on outputs (the cheap proxy here; the full
    # byte-equivalence proof lives in tests/test_exec_equivalence.py).
    assert len({(c["records"], c["gaps"]) for c in cells.values()}) == 1
    assert threaded["cache_hit_rate"] > 0
    assert thread_speedup >= THREAD_SPEEDUP_FLOOR, (
        f"workers=4 cached thread run is only {thread_speedup:.2f}x "
        f"over sequential"
    )
    assert process_speedup >= process_floor, (
        f"workers=4 cached process run is only {process_speedup:.2f}x "
        f"over sequential (floor {process_floor:.2f}x on {cpus} cpus)"
    )
