"""Bench: campaign mining over the measured dataset."""

from repro.analysis.campaign_mining import (
    campaign_summary_table,
    evaluate_clustering,
    mine_campaigns,
)


def test_campaign_mining(benchmark, world, pipeline_run):
    dataset = pipeline_run.annotated_dataset
    mined = benchmark.pedantic(
        mine_campaigns, args=(dataset,),
        kwargs={"threshold": 0.65}, rounds=3, iterations=1,
    )
    print()
    print(campaign_summary_table(mined, top=8).to_text())
    quality = evaluate_clustering(world, dataset, mined)
    print(f"signature homogeneity: {quality.signature_homogeneity:.0%}, "
          f"coverage: {quality.coverage:.0%}")
    assert len(mined) > 20
    assert quality.signature_homogeneity > 0.75
