"""Benchmark fixtures: a benchmark-scale world and pipeline run.

The scale is larger than the unit-test world so table shapes are stable;
it is built once per session. Every bench prints the regenerated artefact
so the harness output can be compared against the paper's tables side by
side.

The pipeline run is observed: its telemetry (spans, per-service
request/retry/backoff counters, meter snapshots) is dumped at session
end to a JSON artifact — ``benchmarks/artifacts/bench_metrics.json`` by
default, override the directory with ``REPRO_BENCH_ARTIFACTS`` — so the
perf trajectory across PRs can be charted from CI output.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.pipeline import run_pipeline
from repro.obs import Telemetry
from repro.world.scenario import ScenarioConfig, build_world

BENCH_CONFIG = ScenarioConfig(seed=7726, n_campaigns=200,
                              sbi_burst_volume=150)

#: Telemetry of the session's pipeline run (if any bench requested it)
#: plus the benchmarks that ran, for the session-end artifact dump.
_SESSION = {"telemetry": None, "benchmarks": []}


@pytest.fixture(scope="session")
def world():
    return build_world(BENCH_CONFIG)


@pytest.fixture(scope="session")
def pipeline_run(world):
    telemetry = Telemetry.create(clock=world.clock)
    run = run_pipeline(world, telemetry=telemetry)
    _SESSION["telemetry"] = telemetry
    return run


@pytest.fixture(scope="session")
def enriched(pipeline_run):
    return pipeline_run.enriched


@pytest.fixture(autouse=True)
def _record_benchmark(request):
    _SESSION["benchmarks"].append(request.node.nodeid)
    yield


def pytest_sessionfinish(session, exitstatus):
    telemetry = _SESSION["telemetry"]
    if telemetry is None:
        return
    out_dir = Path(os.environ.get("REPRO_BENCH_ARTIFACTS",
                                  str(Path(__file__).parent / "artifacts")))
    out_dir.mkdir(parents=True, exist_ok=True)
    artifact = {
        "config": {"seed": BENCH_CONFIG.seed,
                   "n_campaigns": BENCH_CONFIG.n_campaigns},
        "benchmarks": _SESSION["benchmarks"],
        "telemetry": telemetry.to_dict(),
    }
    path = out_dir / "bench_metrics.json"
    path.write_text(json.dumps(artifact, indent=2, default=str))


def show(table) -> None:
    """Print a regenerated table under a separator."""
    print()
    print(table.to_text())
