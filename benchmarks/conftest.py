"""Benchmark fixtures: a benchmark-scale world and pipeline run.

The scale is larger than the unit-test world so table shapes are stable;
it is built once per session. Every bench prints the regenerated artefact
so the harness output can be compared against the paper's tables side by
side.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import run_pipeline
from repro.world.scenario import ScenarioConfig, build_world

BENCH_CONFIG = ScenarioConfig(seed=7726, n_campaigns=200,
                              sbi_burst_volume=150)


@pytest.fixture(scope="session")
def world():
    return build_world(BENCH_CONFIG)


@pytest.fixture(scope="session")
def pipeline_run(world):
    return run_pipeline(world)


@pytest.fixture(scope="session")
def enriched(pipeline_run):
    return pipeline_run.enriched


def show(table) -> None:
    """Print a regenerated table under a separator."""
    print()
    print(table.to_text())
