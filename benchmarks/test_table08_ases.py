"""Bench: regenerate Table 8 (hosting autonomous systems)."""

from repro.analysis.hosting import build_table8, hosting_overview
from conftest import show


def test_table08_ases(benchmark, enriched):
    table = benchmark(build_table8, enriched)
    show(table)
    overview = hosting_overview(enriched)
    # Shape: only a minority of domains resolve in passive DNS; the top
    # table rows are cloud providers; Cloudflare fronts ~19% of
    # resolving domains (§4.6) and is reported in the note, not a row.
    assert overview.resolving_domains < len(enriched.urls)
    top = [row[0] for row in table.rows[:6]]
    assert any(name in top for name in ("Amazon", "Akamai", "Google"))
    assert all(row[0] != "Cloudflare" for row in table.rows)
