"""Bench: regenerate Table 1 (dataset overview per forum)."""

from repro.analysis.overview import build_table1
from conftest import show


def test_table01_overview(benchmark, pipeline_run):
    table = benchmark(build_table1, pipeline_run.collection,
                      pipeline_run.dataset)
    show(table)
    records = table.to_records()
    twitter = next(r for r in records if r["Online Forum"] == "Twitter")
    # Shape: Twitter carries the overwhelming majority of posts (92% of
    # messages in the paper).
    assert twitter["Posts"] > sum(
        r["Posts"] for r in records
        if r["Online Forum"] not in ("Twitter", "Total")
    )
