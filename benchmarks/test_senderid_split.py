"""Bench: the §4.1 sender-ID class split."""

from repro.analysis.sender import sender_kind_split


def test_senderid_split(benchmark, enriched):
    split = benchmark(sender_kind_split, enriched)
    total = split.total
    print(f"\nphones={split.phone_numbers} ({split.phone_numbers/total:.1%}) "
          f"alnum={split.alphanumeric} ({split.alphanumeric/total:.1%}) "
          f"emails={split.emails} ({split.emails/total:.1%})")
    # Shape (§4.1): phones ~66%, alphanumeric ~31%, emails ~4% — and
    # crucially alphanumeric > emails (the reverse of US-only studies).
    assert split.phone_numbers > split.alphanumeric > split.emails
    assert split.phone_numbers / total > 0.5
    assert split.emails / total < 0.12
