"""Bench: end-to-end pipeline throughput at two world scales.

Not a paper table — an engineering benchmark that keeps the whole
collect→curate→enrich path honest as the library evolves. The
execution engine's pool × workers × cache grid (and its
``exec_grid.json`` artifact) lives in ``benchmarks/test_exec_grid.py``.
"""

from repro.core.pipeline import run_pipeline
from repro.world.scenario import ScenarioConfig, build_world


def test_pipeline_small(benchmark):
    def build_and_run():
        world = build_world(ScenarioConfig(seed=1, n_campaigns=30))
        return run_pipeline(world)

    run = benchmark.pedantic(build_and_run, rounds=3, iterations=1)
    assert len(run.dataset) > 50


def test_pipeline_medium(benchmark):
    def build_and_run():
        world = build_world(ScenarioConfig(seed=2, n_campaigns=120))
        return run_pipeline(world)

    run = benchmark.pedantic(build_and_run, rounds=2, iterations=1)
    records = len(run.dataset)
    print(f"\nmedium world: {records} records, "
          f"{len(run.collection.reports)} reports collected")
    assert records > 300
