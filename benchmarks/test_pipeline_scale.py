"""Bench: end-to-end pipeline throughput at two world scales, plus the
execution engine's workers × cache grid on a large scenario.

Not a paper table — an engineering benchmark that keeps the whole
collect→curate→enrich path honest as the library evolves. The grid
dumps ``artifacts/exec_grid.json`` (per-cell wall time, speedup over
the sequential uncached baseline, cache hit rate) and asserts the
engine's headline perf bar: ≥ 1.5× at ``--workers 4`` with the cache
on. The speedup comes from the cache deduplicating annotation compute
(duplicate message texts are ~half the corpus); under the GIL the
thread pool contributes structure, not CPU parallelism.
"""

import json
import os
import time
from pathlib import Path

from repro.core.pipeline import run_pipeline
from repro.exec import ExecutionPolicy
from repro.obs import Telemetry
from repro.world.scenario import ScenarioConfig, build_world

#: The "large scenario": heavier per-campaign volume than BENCH_CONFIG,
#: so duplicate texts (the cache's target) carry production-like weight.
GRID_CONFIG = ScenarioConfig(seed=7726, n_campaigns=240,
                             mean_campaign_volume=70.0,
                             sbi_burst_volume=150)

GRID = ((1, False), (1, True), (4, False), (4, True))


def test_pipeline_small(benchmark):
    def build_and_run():
        world = build_world(ScenarioConfig(seed=1, n_campaigns=30))
        return run_pipeline(world)

    run = benchmark.pedantic(build_and_run, rounds=3, iterations=1)
    assert len(run.dataset) > 50


def test_pipeline_medium(benchmark):
    def build_and_run():
        world = build_world(ScenarioConfig(seed=2, n_campaigns=120))
        return run_pipeline(world)

    run = benchmark.pedantic(build_and_run, rounds=2, iterations=1)
    records = len(run.dataset)
    print(f"\nmedium world: {records} records, "
          f"{len(run.collection.reports)} reports collected")
    assert records > 300


def test_workers_cache_grid():
    """Run the engine grid on the large scenario and dump the artifact."""
    cells = {}
    for workers, cache in GRID:
        world = build_world(GRID_CONFIG)
        telemetry = Telemetry.create(clock=world.clock)
        started = time.perf_counter()
        run = run_pipeline(
            world, telemetry=telemetry,
            execution=ExecutionPolicy(workers=workers, cache=cache),
        )
        wall = time.perf_counter() - started
        snapshot = telemetry.cache_snapshot
        cells[f"workers={workers},cache={'on' if cache else 'off'}"] = {
            "workers": workers,
            "cache": cache,
            "wall_seconds": round(wall, 3),
            "records": len(run.dataset),
            "gaps": len(run.enriched.gaps),
            "cache_hit_rate": round(snapshot.get("hit_rate", 0.0), 4),
            "cache_hits": snapshot.get("totals", {}).get("hits", 0),
        }

    baseline = cells["workers=1,cache=off"]
    fastest = cells["workers=4,cache=on"]
    speedup = baseline["wall_seconds"] / fastest["wall_seconds"]

    out_dir = Path(os.environ.get("REPRO_BENCH_ARTIFACTS",
                                  str(Path(__file__).parent / "artifacts")))
    out_dir.mkdir(parents=True, exist_ok=True)
    artifact = {
        "config": {"seed": GRID_CONFIG.seed,
                   "n_campaigns": GRID_CONFIG.n_campaigns,
                   "mean_campaign_volume": GRID_CONFIG.mean_campaign_volume},
        "cells": cells,
        "speedup_workers4_cached_vs_sequential": round(speedup, 3),
    }
    (out_dir / "exec_grid.json").write_text(
        json.dumps(artifact, indent=2))
    print(f"\nexec grid: speedup {speedup:.2f}x, "
          f"hit rate {fastest['cache_hit_rate']:.1%}")

    # All cells must agree on outputs (the cheap proxy here; the full
    # byte-equivalence proof lives in tests/test_exec_equivalence.py).
    assert len({(c["records"], c["gaps"]) for c in cells.values()}) == 1
    assert fastest["cache_hit_rate"] > 0
    assert speedup >= 1.5, (
        f"workers=4 cached run is only {speedup:.2f}x over sequential"
    )
