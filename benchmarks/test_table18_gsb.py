"""Bench: regenerate Table 18 (Google Safe Browsing's three surfaces)."""

from repro.analysis.detection import build_table18, gsb_comparison
from repro.types import GsbStatus
from conftest import show


def test_table18_gsb(benchmark, enriched):
    table = benchmark(build_table18, enriched)
    show(table)
    data = gsb_comparison(enriched)
    total = data.total
    blocked = data.transparency.get(GsbStatus.NOT_QUERIED, 0)
    unsafe = data.transparency.get(GsbStatus.UNSAFE, 0)
    # Shape: the API flags ~1%; the transparency report blocks ~50% of
    # automated queries but finds several times more unsafe URLs than
    # the API among those it answers.
    assert data.api_unsafe / total < 0.05
    assert 0.35 < blocked / total < 0.65
    assert unsafe >= data.api_unsafe
