"""Bench: regenerate Table 17 (domain registrars)."""

from repro.analysis.domains import build_table17, preferred_registrar_for
from repro.types import ScamType
from conftest import show


def test_table17_registrars(benchmark, enriched):
    table = benchmark(build_table17, enriched)
    show(table)
    # Shape: GoDaddy first, NameCheap in the top ranks; Gname is the
    # government-scam speciality registrar (§4.4).
    assert table.rows[0][0] == "GoDaddy"
    top = [row[0] for row in table.rows[:5]]
    assert "NameCheap" in top
    gov = preferred_registrar_for(enriched, ScamType.GOVERNMENT)
    print(f"\npreferred registrar for government scams: {gov}")
