"""Bench: the §7.2 mitigation what-if simulators."""

from repro.core.mitigation import run_all_mitigations


def test_mitigations(benchmark, enriched):
    outcomes = benchmark.pedantic(
        run_all_mitigations, args=(enriched,), rounds=3, iterations=1
    )
    print()
    for outcome in outcomes:
        print(f"  {outcome.name:<44} {outcome.intercepted:>5}/"
              f"{outcome.eligible:<5} ({outcome.coverage:.0%})")
    by_name = {o.name: o for o in outcomes}
    # Registrar squatting checks intercept a large share of scam domains;
    # official-channel reporting at today's awareness catches little.
    assert by_name["registrar brand-squatting check"].coverage > 0.3
    reporting = next(o for o in outcomes if o.name.startswith("7726"))
    assert reporting.coverage < 0.2
