"""Ablation: collection keyword-set sensitivity (§3.1 / §7.1).

The paper collects with four English keywords and concedes the set bounds
recall. This ablation measures report recall per keyword subset against
the world's ground truth of keyword-bearing reports.
"""

import datetime as dt

from repro.core.collection import TwitterCollector
from repro.core.config import PipelineConfig
from repro.forums.base import COLLECTION_KEYWORDS


def _recall(world, keywords):
    config = PipelineConfig(keywords=tuple(keywords))
    result = TwitterCollector(world.twitter, config).collect()
    linked = {r.truth_event_id for r in result.reports if r.truth_event_id}
    return linked


def test_ablation_keywords(benchmark, world):
    full = benchmark.pedantic(
        _recall, args=(world, COLLECTION_KEYWORDS), rounds=3, iterations=1
    )
    singles = {kw: _recall(world, [kw]) for kw in COLLECTION_KEYWORDS}
    print(f"\nfull keyword set: {len(full)} distinct events")
    for kw, events in sorted(singles.items(), key=lambda kv: -len(kv[1])):
        print(f"  '{kw}': {len(events)} events "
              f"({len(events)/max(len(full),1):.0%} of full recall)")
    # Every single keyword recalls strictly less than the full set, and
    # the union of singles equals the full set (keywords are the only
    # collection channel).
    union = set()
    for events in singles.values():
        union |= events
    assert union == full
    assert all(len(events) < len(full) for events in singles.values())
