"""Bench: regenerate Figure 2 (send time-of-day per weekday)."""

from repro.analysis.strategies import build_figure2_table, timestamp_analysis
from conftest import show


def test_figure02_timestamps(benchmark, enriched):
    analysis = benchmark(timestamp_analysis, enriched)
    show(build_figure2_table(enriched))
    # Shape: the 2021-style flash campaign is detected and excluded;
    # weekday medians sit in business hours; some weekday pairs differ
    # significantly under the two-sample KS test (§5.1).
    assert analysis.excluded_campaign_size > 50
    for day in ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday"):
        if analysis.samples[day]:
            hour = int(analysis.medians[day].split(":")[0])
            assert 9 <= hour <= 20
    assert analysis.significant_pairs() is not None
    print(f"\nsignificant weekday pairs: "
          f"{len(analysis.significant_pairs())} of "
          f"{len(analysis.ks_results)}")
