"""Ablation: learned multi-class detector vs the rule-based baseline.

The §7.2 recommendation made concrete: Naive Bayes trained on the
labelled dataset against the static rule filter of the early literature.
The rule filter only does binary smishing/not — so the comparison runs
binary (smishing vs spam/conversation) where both compete, plus the
multi-class task only the learned model can attempt.
"""

from repro.detect import (
    FeatureExtractor,
    NaiveBayesClassifier,
    RuleBasedFilter,
    evaluate_classifier,
    train_test_split,
)
from repro.types import ScamType

URL_SCAMS = {ScamType.BANKING, ScamType.DELIVERY, ScamType.GOVERNMENT,
             ScamType.TELECOM, ScamType.OTHERS}


def test_ablation_detector(benchmark, world, pipeline_run):
    extractor = FeatureExtractor()
    labelled = [
        (record, world.event(record.truth_event_id).scam_type)
        for record in pipeline_run.dataset
        if record.truth_event_id and world.event(record.truth_event_id)
    ]
    train, test = train_test_split(labelled, test_fraction=0.3, seed=11)

    def train_and_score():
        model = NaiveBayesClassifier()
        model.fit([extractor.extract(r.text, r.sender) for r, _ in train],
                  [label for _, label in train])
        predictions = model.predict_many(
            extractor.extract(r.text, r.sender) for r, _ in test
        )
        return evaluate_classifier([label for _, label in test], predictions)

    multi = benchmark.pedantic(train_and_score, rounds=3, iterations=1)

    # Binary comparison: "URL-phishing smish" vs everything else.
    binary_truth = [label in URL_SCAMS for _, label in test]
    rules = RuleBasedFilter()
    rule_preds = [rules.predict(r.text, r.sender) for r, _ in test]
    rule_result = evaluate_classifier(binary_truth, rule_preds)

    nb_bin = NaiveBayesClassifier()
    nb_bin.fit([extractor.extract(r.text, r.sender) for r, _ in train],
               [label in URL_SCAMS for _, label in train])
    nb_preds = nb_bin.predict_many(
        extractor.extract(r.text, r.sender) for r, _ in test
    )
    nb_result = evaluate_classifier(binary_truth, nb_preds)

    print(f"\nmulti-class NB : acc={multi.accuracy:.3f} "
          f"macro-F1={multi.macro_f1:.3f}")
    print(f"binary NB      : acc={nb_result.accuracy:.3f}")
    print(f"binary rules   : acc={rule_result.accuracy:.3f}")
    print(multi.to_table("Multi-class scam typing (NB)").to_text())
    # The learned model beats static rules on the same binary task.
    assert nb_result.accuracy > rule_result.accuracy
    assert multi.accuracy > 0.6
