"""Bench: regenerate Table 10 (scam category distribution)."""

from repro.analysis.strategies import build_table10, scam_category_counts
from repro.types import ScamType
from conftest import show


def test_table10_scam_categories(benchmark, enriched):
    table = benchmark(build_table10, enriched)
    show(table)
    counts = scam_category_counts(enriched)
    total = sum(counts.values())
    # Shape: banking dominates (~45%), others second (~21%), delivery
    # and government follow; conversation scams are ~1% each.
    assert counts.most_common(1)[0][0] is ScamType.BANKING
    assert 0.30 < counts[ScamType.BANKING] / total < 0.60
    assert counts[ScamType.OTHERS] > counts[ScamType.DELIVERY] * 0.8
    assert counts[ScamType.WRONG_NUMBER] / total < 0.05
    assert counts[ScamType.HEY_MUM_DAD] / total < 0.06
