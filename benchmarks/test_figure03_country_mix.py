"""Bench: regenerate Figure 3 (scam mix per origin country)."""

from repro.analysis.sender import build_figure3_table, figure3_data
from repro.types import ScamType
from conftest import show


def test_figure03_country_mix(benchmark, enriched):
    data = benchmark(figure3_data, enriched)
    show(build_figure3_table(enriched))
    # Shape: India's mobile numbers are overwhelmingly used for banking
    # scams; the USA's mix leans to the 'others' categories (§5.6).
    assert "IND" in data
    ind_top = max(data["IND"].items(), key=lambda kv: kv[1])[0]
    assert ind_top is ScamType.BANKING
    if "USA" in data:
        usa = data["USA"]
        assert usa.get(ScamType.OTHERS, 0) > usa.get(ScamType.TELECOM, 0)
