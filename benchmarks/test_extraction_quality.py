"""Bench: extraction quality against ground truth (the §3.2 claims)."""

from repro.analysis.quality import evaluate_extraction_quality, loss_breakdown


def test_extraction_quality(benchmark, world, pipeline_run):
    report = benchmark.pedantic(
        evaluate_extraction_quality, args=(world, pipeline_run.dataset),
        rounds=3, iterations=1,
    )
    print()
    print(report.to_table().to_text())
    losses = loss_breakdown(world, pipeline_run.dataset)
    print(f"losses: {losses}")
    # §3.2: text extracted from every SMS screenshot; senders lost only
    # to reporter redactions; URLs recovered including wrapped ones.
    assert report.text.recall > 0.99
    assert report.url.recall > 0.9
    assert report.sender.accuracy > 0.95
    assert report.timestamp.accuracy > 0.9
