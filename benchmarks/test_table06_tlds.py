"""Bench: regenerate Table 6 (top TLDs, direct vs shortened)."""

from repro.analysis.domains import build_table6, tld_counters
from conftest import show


def test_table06_tlds(benchmark, enriched):
    table = benchmark(build_table6, enriched)
    show(table)
    direct, shortened = tld_counters(enriched)
    # Shape: .com leads scammer-registered domains; 'ly' leads the
    # shortened column (bit.ly and friends).
    assert direct.most_common(1)[0][0] == "com"
    assert shortened.most_common(1)[0][0] in ("ly", "gd")
