"""Bench: regenerate Table 4 (top abused mobile network operators)."""

from repro.analysis.sender import build_table4
from conftest import show


def test_table04_mnos(benchmark, enriched):
    table = benchmark(build_table4, enriched)
    show(table)
    # Shape: Vodafone tops the ranking, abused across many countries;
    # AirTel and the Indian operators rank high (Table 4).
    assert table.rows[0][0] == "Vodafone"
    top_names = [row[0] for row in table.rows[:6]]
    assert any(name in top_names
               for name in ("AirTel", "BSNL Mobile", "Reliance Jio"))
    vodafone_countries = str(table.rows[0][2]).split(", ")
    assert len(vodafone_countries) >= 3
