"""Bench: regenerate Table 12 (impersonated brands)."""

from repro.analysis.strategies import build_table12, brand_counts
from conftest import show


def test_table12_brands(benchmark, enriched):
    table = benchmark(build_table12, enriched)
    show(table)
    counts = brand_counts(enriched)
    # Shape: SBI is the single most impersonated brand; the top 10 is
    # dominated by financial institutions (Table 12).
    assert counts.most_common(1)[0][0] == "State Bank of India"
    categories = [str(row[1]) for row in table.rows]
    assert categories.count("banking") >= 4
