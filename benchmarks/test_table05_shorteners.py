"""Bench: regenerate Table 5 (URL shorteners per scam type)."""

from repro.analysis.shorteners import build_table5, shortener_usage
from conftest import show


def test_table05_shorteners(benchmark, enriched):
    table = benchmark(build_table5, enriched)
    show(table)
    # Shape: bit.ly is the most abused shortener overall (30.6% in the
    # paper) and banking is its biggest scam column.
    assert table.rows[0][0] == "bit.ly"
    totals, per_scam = shortener_usage(enriched)
    from repro.types import ScamType
    bitly = per_scam["bit.ly"]
    assert bitly.most_common(1)[0][0] is ScamType.BANKING
