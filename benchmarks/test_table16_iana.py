"""Bench: regenerate Table 16 (TLDs by IANA classification)."""

from repro.analysis.domains import build_table16
from conftest import show


def test_table16_iana(benchmark, enriched):
    table = benchmark(build_table16, enriched)
    show(table)
    records = table.to_records()
    generic = next(r for r in records if "gTLD" in r["Type"])
    cc = next(r for r in records if "ccTLD" in r["Type"])
    # Shape: gTLDs ~72%, ccTLDs ~27%, restricted/sponsored negligible.
    assert generic["URLs %"] > 50
    assert 5 < cc["URLs %"] < 45
    assert generic["TLDs"] > 10
