"""Bench: regenerate Table 15 (yearly Twitter collection volumes)."""

from repro.analysis.overview import build_table15
from conftest import show


def test_table15_twitter_years(benchmark, pipeline_run):
    table = benchmark(build_table15, pipeline_run.collection)
    show(table)
    years = [row[0] for row in table.rows[:-1]]
    assert "2021" in years
    assert years == sorted(years)
    # Totals row equals the sum of yearly tweets.
    assert table.rows[-1][0] == "Total"
