"""Bench: regenerate Table 3 (HLR phone-number types)."""

from repro.analysis.sender import build_table3
from conftest import show


def test_table03_number_types(benchmark, enriched):
    table = benchmark(build_table3, enriched)
    show(table)
    text = table.to_text()
    # Shape: Mobile dominates (66.7% in the paper), Bad Format is the
    # largest invalid class (24.3%).
    mobile_row = next(r for r in table.rows if r[0] == "Mobile")
    bad_row = next(r for r in table.rows if r[0] == "Bad Format")
    mobile_pct = float(str(mobile_row[1]).split("(")[1].rstrip("%)"))
    bad_pct = float(str(bad_row[1]).split("(")[1].rstrip("%)"))
    assert mobile_pct > 50
    assert 10 < bad_pct < 40
    assert "Landline" in text
