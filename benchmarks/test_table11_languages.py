"""Bench: regenerate Table 11 (message languages vs most-spoken)."""

from repro.analysis.strategies import build_table11, language_counts
from conftest import show


def test_table11_languages(benchmark, enriched):
    table = benchmark(build_table11, enriched)
    show(table)
    counts = language_counts(enriched)
    total = sum(counts.values())
    ranked = [code for code, _ in counts.most_common()]
    # Shape: English dominates (~65%), Spanish second; the mismatch with
    # world speaker populations (Mandarin ~0.2% of messages) holds.
    assert ranked[0] == "en"
    assert counts["en"] / total > 0.5
    assert "es" in ranked[:4]
    assert counts.get("zh", 0) / total < 0.02
