"""Bench: incremental ingestion vs. repeated full recomputation.

The scenario a continuous ingester exists for: the collection window
grows epoch by epoch, and after each growth step you want the merged,
enriched dataset up to the new frontier. The batch answer recomputes
the full window every time — paying collection, curation, and every
enrichment charge again for material already processed. The stream
answer (:mod:`repro.stream`) pages forward and enriches only the delta.

The headline metric is *charged service calls* (deterministic, the unit
the paper's budget accounting uses), not wall seconds: the cumulative
charge total across N full recomputes must be at least 2× what one
N-epoch stream session pays, and the dedup ledger must demonstrably
contribute (hit rate > 0). Per-step numbers land in
``artifacts/stream_grid.json`` so the trajectory can be charted across
PRs.
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.obs import Telemetry
from repro.stream import StreamSession, clamp_windows, global_window, plan_epochs
from repro.world.scenario import ScenarioConfig, build_world

STREAM_CONFIG = ScenarioConfig(seed=7726, n_campaigns=60)
EPOCHS = 4

#: Wire names of every metered enrichment service.
SERVICES = ("hlr", "whois", "crtsh", "spamhaus-pdns", "ipinfo",
            "virustotal", "gsb", "openai")


def _artifact_dir() -> Path:
    return Path(os.environ.get("REPRO_BENCH_ARTIFACTS",
                               str(Path(__file__).parent / "artifacts")))


def _full_recompute(windows) -> dict:
    """One batch run over ``windows``, returning its charge totals."""
    world = build_world(STREAM_CONFIG)
    telemetry = Telemetry.create(clock=world.clock)
    started = time.perf_counter()
    run = run_pipeline(
        world,
        config=PipelineConfig(windows=windows, stable_vision=True),
        telemetry=telemetry,
    )
    wall = time.perf_counter() - started
    charged = {name: telemetry.meter_snapshots[name]["used"]
               for name in SERVICES if name in telemetry.meter_snapshots}
    return {"records": len(run.dataset), "charged": charged,
            "wall_seconds": round(wall, 3)}


def test_incremental_beats_full_recompute():
    base = PipelineConfig().windows
    start, _ = global_window(base)
    plan = plan_epochs(base, epochs=EPOCHS)

    # The batch strategy: after each epoch's worth of new material,
    # recompute the whole window so far, from scratch.
    batch_steps = []
    for window in plan:
        step = _full_recompute(clamp_windows(base, start, window.end))
        step["window"] = window.label
        batch_steps.append(step)
    batch_total = sum(sum(step["charged"].values())
                      for step in batch_steps)

    # The stream strategy: one session, paging through the same epochs.
    session = StreamSession.create(STREAM_CONFIG, epochs=EPOCHS)
    started = time.perf_counter()
    state = session.run()
    stream_wall = time.perf_counter() - started
    stream_charged = {name: meter.snapshot()["used"]
                      for name, meter in session.services.meters().items()}
    stream_total = sum(stream_charged.values())
    ledger_stats = session.ledger.stats()

    # Both strategies end at the same frontier with the same corpus.
    assert len(state.dataset) == batch_steps[-1]["records"]

    speedup = batch_total / stream_total
    print(f"\nstream delta bench: {EPOCHS} epochs, "
          f"{len(state.dataset)} records; charged calls "
          f"batch={batch_total} stream={stream_total} "
          f"(cumulative speedup {speedup:.2f}x, "
          f"ledger hit rate {ledger_stats['hit_rate']:.1%})")

    artifact = {
        "config": {"seed": STREAM_CONFIG.seed,
                   "n_campaigns": STREAM_CONFIG.n_campaigns,
                   "epochs": EPOCHS},
        "batch_steps": batch_steps,
        "stream": {
            "records": len(state.dataset),
            "charged": stream_charged,
            "wall_seconds": round(stream_wall, 3),
            "epochs": [stats.to_dict() for stats in state.epoch_stats],
            "ledger": ledger_stats,
        },
        "charged_total": {"batch": batch_total, "stream": stream_total},
        "cumulative_speedup": round(speedup, 3),
    }
    out_dir = _artifact_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "stream_grid.json").write_text(
        json.dumps(artifact, indent=2, default=str))

    assert ledger_stats["hit_rate"] > 0, (
        "dedup ledger never hit — cross-epoch reposts should exist")
    assert speedup >= 2.0, (
        f"incremental ingestion only saved {speedup:.2f}x in charged "
        f"calls over full recomputation (needs >= 2x)")
