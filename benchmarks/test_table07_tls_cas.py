"""Bench: regenerate Table 7 (TLS certificate authorities)."""

from repro.analysis.tls import build_table7, ca_usage, tls_overview
from conftest import show


def test_table07_tls_cas(benchmark, enriched):
    table = benchmark(build_table7, enriched)
    show(table)
    # Shape: Let's Encrypt leads by certificates AND domains; Sectigo
    # ranks high by domains with comparatively few certificates.
    assert table.rows[0][0] == "Let's Encrypt"
    certs, domains = ca_usage(enriched)
    if "Sectigo" in certs:
        assert certs["Let's Encrypt"] / max(domains["Let's Encrypt"], 1) > \
            certs["Sectigo"] / max(domains["Sectigo"], 1)
    overview = tls_overview(enriched)
    print(f"\ncerts={overview.total_certificates} "
          f"domains={overview.domains_with_certs} "
          f"mean/domain={overview.per_domain.mean:.1f} "
          f"median={overview.per_domain.median:.0f}")
    # Heavy tail: mean well above median (paper: mean 39, median 4).
    assert overview.per_domain.mean > overview.per_domain.median
