"""Bench: regenerate Table 14 (sender-ID origin countries)."""

from repro.analysis.sender import build_table14
from conftest import show


def test_table14_countries(benchmark, enriched):
    table = benchmark(build_table14, enriched)
    show(table)
    # Shape: India first, USA second; live counts are a minority of all.
    assert table.rows[0][0] == "IND"
    top5 = [row[0] for row in table.rows[:5]]
    assert "USA" in top5
    for row in table.rows:
        assert row[3] <= row[2]
