"""Ablation: the three screenshot-extraction back-ends (§3.2).

Quantifies why the paper abandoned Pytesseract and the Google Vision API
for OpenAI's Vision API: text recovery, URL recovery, and the ability to
dismiss non-SMS images.
"""

from repro.errors import ExtractionError
from repro.imaging.ocr import PytesseractOcr
from repro.imaging.renderer import ScreenshotRenderer
from repro.imaging.screenshot import ImageKind
from repro.imaging.vision_google import GoogleVisionOcr
from repro.imaging.vision_openai import OpenAiVisionExtractor
from repro.net.url import extract_urls
from repro.utils.rng import derive


def _corpus(world, n=400):
    renderer = ScreenshotRenderer(derive(99, "ablation-ocr"))
    shots = []
    for event in world.events[:n]:
        shots.append(renderer.render_event(event, redact_sender=False,
                                           redact_url=False))
    for _ in range(n // 10):
        shots.append(renderer.render_decoy())
    return shots


def _url_recovered(text, truth_url):
    if truth_url is None:
        return True
    urls = extract_urls(text.replace("\n", " "))
    return any(str(u) == truth_url for u in urls)


def test_ablation_ocr_backends(benchmark, world):
    shots = _corpus(world)
    sms_shots = [s for s in shots if s.kind is ImageKind.SMS_SCREENSHOT]

    tesseract = PytesseractOcr(derive(1, "t"))
    google = GoogleVisionOcr(derive(2, "g"))
    openai = OpenAiVisionExtractor(derive(3, "o"), miss_rate=0.0)

    def sweep():
        results = {}
        t_ok = t_url = 0
        for shot in sms_shots:
            try:
                out = tesseract.image_to_text(shot)
                t_ok += 1
                if _url_recovered(out.text, shot.truth_url):
                    t_url += 1
            except ExtractionError:
                pass
        results["pytesseract"] = (t_ok, t_url)
        g_ok = g_url = 0
        for shot in sms_shots:
            try:
                out = google.annotate(shot)
                g_ok += 1
                if _url_recovered(out.full_text, shot.truth_url):
                    g_url += 1
            except ExtractionError:
                pass
        results["google-vision"] = (g_ok, g_url)
        o_ok = o_url = dismissed = 0
        for shot in shots:
            out = openai.extract(shot)
            if out.dismissed:
                dismissed += 1
                continue
            o_ok += 1
            if shot.truth_url is None or out.url == shot.truth_url:
                o_url += 1
        results["openai-vision"] = (o_ok, o_url)
        results["openai-dismissed"] = (dismissed, 0)
        return results

    results = benchmark.pedantic(sweep, rounds=3, iterations=1)
    n = len(sms_shots)
    t_ok, t_url = results["pytesseract"]
    g_ok, g_url = results["google-vision"]
    o_ok, o_url = results["openai-vision"]
    print(f"\n{'backend':<16}{'read ok':>10}{'url ok':>10}  (n={n})")
    print(f"{'pytesseract':<16}{t_ok/n:>9.1%}{t_url/n:>9.1%}")
    print(f"{'google-vision':<16}{g_ok/n:>9.1%}{g_url/n:>9.1%}")
    print(f"{'openai-vision':<16}{o_ok/n:>9.1%}{o_url/n:>9.1%}")
    # The paper's §3.2 ordering: OpenAI > Google > Pytesseract for URL
    # recovery; only OpenAI dismisses non-SMS decoys.
    assert o_url > g_url > t_url
    assert o_ok == n
    assert results["openai-dismissed"][0] > 0
