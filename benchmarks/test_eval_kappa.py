"""Bench: the §3.4 annotation evaluation (IRR + model agreement)."""

from repro.core.evaluation import evaluate_annotation
from repro.utils.stats import interpret_kappa


def test_eval_kappa(benchmark, world, pipeline_run):
    report = benchmark.pedantic(
        evaluate_annotation, args=(world, pipeline_run.dataset),
        kwargs={"sample_size": 150, "seed": 42}, rounds=3, iterations=1,
    )
    print(f"\nIRR: brands={report.irr.brands:.2f} "
          f"scam={report.irr.scam_types:.2f} lures={report.irr.lures:.2f}")
    print(f"model: brands={report.model_vs_consensus.brands:.2f} "
          f"scam={report.model_vs_consensus.scam_types:.2f} "
          f"lures={report.model_vs_consensus.lures:.2f}")
    # Shape (§3.4): near-perfect IRR on scam types; substantial-or-better
    # agreement everywhere.
    assert interpret_kappa(report.irr.scam_types) in ("near-perfect",
                                                      "substantial")
    assert report.model_vs_consensus.scam_types > 0.75
    assert report.model_vs_consensus.lures > 0.5
